"""Index registry: named, lazily materialized, generation-tagged indexes.

Every pre-serve entry point (CLI, benchmarks, examples) rebuilt its index
per process and threw it away. The registry gives indexes names and
lifetimes: a name maps to either a *builder* (a zero-argument callable
returning an :class:`~repro.act.index.ACTIndex`) or a *path* (an ``.npz``
written by :mod:`repro.act.serialize`). The first ``get`` materializes
the index — build or load — and pins it for every later request; builds
of distinct names can proceed concurrently, while concurrent ``get`` of
the same name build exactly once (per-name locks).

Materialized entries are :class:`IndexGeneration` records — an
immutable ``(generation, index, source artifact, mmap mode)`` tuple.
The generation number increments on every materialization of a name
(first load, post-evict rebuild, explicit :meth:`IndexRegistry.reload`),
so a request that pins a record at admission keeps one coherent core,
cache keyspace, and refinement engine for its whole lifetime even if an
operator swaps the index mid-request: the old record object stays alive
for exactly as long as in-flight requests reference it.

A pinned index *is* its columnar :class:`~repro.act.core.ACTCore` — the
flat arrays exist from construction (builds export them, loads
materialize them straight from the ``.npz``), so there is no lazy
freeze step to race and cold loads never rebuild a Python trie.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..act import serialize
from ..act.index import ACTIndex
from ..errors import ServeError, UnknownIndexError
from . import chaos

#: Distinguishes "argument not passed" from an explicit ``None``.
_UNSET = object()


def prewarm_index(index: ACTIndex, edge_table: bool = True) -> ACTIndex:
    """Pre-build one index's hot-path artifacts for pre-fork binding.

    Serving-layer alias for :meth:`repro.act.index.ACTIndex.prewarm` —
    the logic lives on the index so lower layers (``join/parallel.py``)
    share the same fork discipline without importing the serving stack.
    """
    return index.prewarm(edge_table=edge_table)


@dataclass(frozen=True)
class IndexGeneration:
    """One materialized generation of a named index (the hot-path record).

    ``source`` names how the registration materializes ("builder",
    "path", or "index" for pre-built objects); ``path``/``mmap_mode``
    record the artifact *this* generation was actually loaded from —
    for fleet reloads that is the coordinator's side ``.npz``, not the
    registration's source path.
    """

    name: str
    generation: int
    index: ACTIndex
    source: str
    path: Optional[Path] = None
    mmap_mode: Optional[str] = None
    materialize_seconds: Optional[float] = None

    @property
    def core(self):
        return self.index.core

    def describe(self) -> dict:
        """The admin-listing view of this generation."""
        info = {
            "name": self.name,
            "generation": self.generation,
            "source": self.source,
            "bytes": self.index.core.total_bytes,
            "mmap_mode": self.mmap_mode,
            "num_polygons": self.index.num_polygons,
            "precision_meters": self.index.precision_meters,
            "boundary_level": self.index.boundary_level,
            "materialize_seconds": self.materialize_seconds,
        }
        if self.path is not None:
            info["artifact_path"] = str(self.path)
        return info


@dataclass
class _Registration:
    """One named index: how to materialize it, and the pinned record."""

    name: str
    builder: Optional[Callable[[], ACTIndex]] = None
    path: Optional[Path] = None
    mmap_mode: Optional[str] = None
    #: Integrity mode path loads use (see serialize.load_index).
    verify: str = "header"
    index: Optional[ACTIndex] = None
    #: Generations handed out so far; survives evict() so a name's
    #: generation numbers never repeat within a registry.
    generation: int = 0
    record: Optional[IndexGeneration] = None
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def source(self) -> str:
        if self.path is not None:
            return "path"
        return "index" if self.builder is None else "builder"


class IndexRegistry:
    """Named ACT indexes, built or loaded on first use and reused after."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._registrations: Dict[str, _Registration] = {}
        #: Last generation handed out per name, surviving unregister —
        #: a re-registered name continues its sequence, so a cache
        #: entry written by a request still in flight across the
        #: unregister can never alias a later registration's keys.
        self._last_generations: Dict[str, int] = {}
        #: Lock-free hot-path view: name -> pinned generation record.
        #: Plain dict reads are GIL-atomic, so request threads skip the
        #: registry lock and pin one coherent generation per request.
        self.materialized: Dict[str, IndexGeneration] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, builder: Callable[[], ACTIndex]) -> None:
        """Register ``name`` to be built by ``builder`` on first use."""
        self._add(_Registration(name=name, builder=builder))

    def register_path(self, name: str, path: Union[str, Path],
                      mmap_mode: Optional[str] = None,
                      verify: str = "header") -> None:
        """Register ``name`` to be loaded from a serialized index file.

        ``mmap_mode="r"`` memory-maps the node pool from the archive on
        materialization (lazy cold start, page-cache sharing across
        forked workers; see :func:`repro.act.serialize.load_index`).
        ``verify`` is the integrity mode every materialization of this
        name loads under (``"header"``, ``"full"``, or ``"off"``); a
        failed check raises
        :class:`~repro.errors.ArtifactCorruptError` out of the
        materializing request or admin call.
        """
        self._add(_Registration(name=name, path=Path(path),
                                mmap_mode=mmap_mode, verify=verify))

    def register_index(self, name: str, index: ACTIndex) -> None:
        """Register an already-built index (pinned immediately)."""
        self._add(_Registration(name=name, index=index))

    def _add(self, registration: _Registration) -> None:
        with self._lock:
            if registration.name in self._registrations:
                raise ServeError(
                    f"index {registration.name!r} is already registered"
                )
            self._registrations[registration.name] = registration
            # continue the name's generation sequence across an
            # unregister + re-register (see _last_generations above)
            registration.generation = self._last_generations.get(
                registration.name, 0)
            # publish pre-built indexes to the hot-path view while still
            # holding the registry lock: a concurrent evict() cannot even
            # resolve the registration until we release it, so pinning
            # and registration are one atomic step
            if registration.index is not None:
                registration.generation += 1
                self._last_generations[registration.name] = \
                    registration.generation
                registration.record = IndexGeneration(
                    name=registration.name,
                    generation=registration.generation,
                    index=registration.index, source="index",
                    materialize_seconds=0.0,
                )
                self.materialized[registration.name] = registration.record

    def unregister(self, name: str) -> dict:
        """Remove a name entirely: registration and pinned record.

        In-flight requests that already pinned the record finish
        normally on it; new requests get
        :class:`~repro.errors.UnknownIndexError`. The name's generation
        counter is kept, so a later re-registration continues the
        sequence instead of reusing numbers a straggling request may
        still be caching under. Returns a summary of what was dropped
        (name, last generation, whether it was materialized).
        """
        with self._lock:
            registration = self._registrations.pop(name, None)
            if registration is None:
                raise UnknownIndexError(
                    f"unknown index {name!r} "
                    f"(registered: {sorted(self._registrations)})"
                )
            self._last_generations[name] = registration.generation
            record = self.materialized.pop(name, None)
        return {
            "name": name,
            "generation": registration.generation,
            "was_materialized": record is not None,
        }

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def get(self, name: str) -> ACTIndex:
        """The pinned index for ``name``, building/loading it on first use."""
        return self.pin(name).index

    def pin(self, name: str) -> IndexGeneration:
        """The pinned generation record, materializing on first use.

        The record is immutable: holding it for the duration of a
        request guarantees the core, polygons, and generation number
        never change underneath the request, reload or not.
        """
        record = self.materialized.get(name)
        if record is not None:
            return record
        registration = self._registration(name)
        with registration.lock:
            if registration.record is None:
                self._materialize_locked(registration)
            return registration.record

    def reload(self, name: str, *,
               source_path: Optional[Union[str, Path]] = None,
               source_mmap_mode=_UNSET,
               artifact_path: Optional[Union[str, Path]] = None,
               artifact_mmap_mode=_UNSET,
               generation: Optional[int] = None,
               verify: Optional[str] = None) -> IndexGeneration:
        """Materialize a fresh generation and atomically swap it in.

        * default: re-run the registration's own source (builder or
          path — the file may have been replaced on disk, which is the
          point);
        * ``source_path`` permanently repoints the registration at a
          new ``.npz`` (the operator shipped new data);
        * ``artifact_path`` loads *this* generation from a specific
          artifact without repointing the source — the fleet reload
          protocol uses it so every worker mmaps the coordinator's side
          file while registrations keep their true source;
        * ``generation`` forces the new record's generation number
          (fleet workers adopt the coordinator-assigned one). A reload
          to a generation the registration already reached is a no-op
          returning the current record, which makes fleet command
          application idempotent;
        * ``verify`` overrides the registration's integrity mode for
          *this* materialization only — the admin layer escalates to
          ``"full"`` when loading operator-shipped bytes, so a bit flip
          deep in an mmap-ed node pool (which the lazy ``"header"``
          mode deliberately never hashes) is rejected before the fleet
          ever serves it.

        The swap is one dict assignment: requests pin either the old
        record or the new one, never a mix, and the old record lives on
        until its last in-flight request drops it.
        """
        registration = self._registration(name)
        with registration.lock:
            if (generation is not None
                    and registration.generation >= generation
                    and registration.record is not None):
                return registration.record
            if source_path is not None:
                registration.path = Path(source_path)
                registration.builder = None
                if source_mmap_mode is not _UNSET:
                    registration.mmap_mode = source_mmap_mode
            self._materialize_locked(
                registration,
                artifact_path=artifact_path,
                artifact_mmap_mode=artifact_mmap_mode,
                generation=generation,
                verify=verify,
            )
            return registration.record

    def _materialize_locked(self, registration: _Registration, *,
                            artifact_path=None, artifact_mmap_mode=_UNSET,
                            generation: Optional[int] = None,
                            verify: Optional[str] = None) -> None:
        """Build/load a new generation; caller holds the registration lock."""
        start = time.perf_counter()
        mmap_mode = (registration.mmap_mode
                     if artifact_mmap_mode is _UNSET else artifact_mmap_mode)
        verify_mode = registration.verify if verify is None else verify
        if artifact_path is not None or registration.path is not None:
            # chaos seam: armed tests inject slow/failing artifact I/O
            # here; the error propagates exactly like a real load
            # failure (reload NACK, materialization 500)
            chaos.fault("artifact.load")
        if artifact_path is not None:
            path = Path(artifact_path)
            index = serialize.load_index(path, mmap_mode=mmap_mode,
                                         verify=verify_mode)
        elif registration.path is not None:
            path = registration.path
            index = serialize.load_index(path, mmap_mode=mmap_mode,
                                         verify=verify_mode)
        elif registration.builder is not None:
            path = None
            index = registration.builder()
        else:
            # an "index" registration has nothing to re-materialize
            # from once evicted — unless the caller supplies an artifact
            if registration.index is None:
                raise ServeError(
                    f"index {registration.name!r} was registered as a "
                    f"pre-built object and cannot be re-materialized "
                    f"without a path"
                )
            path = None
            index = registration.index
        # pre-warm the hot-path artifacts while we still hold the
        # materialization lock: the threaded serve front should never
        # pay the executor/edge-table build (or race it) inside a request
        _ = index.executor.edge_table
        registration.generation = (registration.generation + 1
                                   if generation is None else generation)
        self._last_generations[registration.name] = registration.generation
        registration.record = IndexGeneration(
            name=registration.name,
            generation=registration.generation,
            index=index,
            source=registration.source,
            path=path,
            mmap_mode=mmap_mode if path is not None else None,
            materialize_seconds=time.perf_counter() - start,
        )
        self.materialized[registration.name] = registration.record

    def repoint(self, name: str, path: Union[str, Path],
                mmap_mode: Optional[str] = None) -> None:
        """Repoint a registration's source path without materializing.

        Reload-abort cleanup: a failed ``reload(source_path=...)`` has
        already repointed the registration at a source that turned out
        to be bad (and is now quarantined); this points it back at the
        pre-op source so later default reloads keep working. The pinned
        record is untouched.
        """
        registration = self._registration(name)
        with registration.lock:
            registration.path = Path(path)
            registration.builder = None
            registration.mmap_mode = mmap_mode

    def restore(self, record: IndexGeneration) -> IndexGeneration:
        """Re-pin a previously current record (reload rollback).

        Used by the fleet reload coordinator when publishing a freshly
        materialized generation fails (side-artifact write error): the
        old record becomes current again so this process stays
        convergent with the rest of the fleet. The generation counter
        is *not* rewound — the failed generation's number stays burned,
        so any cache entries written under it remain unreachable.
        """
        registration = self._registration(record.name)
        with registration.lock:
            registration.record = record
            self.materialized[record.name] = record
        return record

    def prewarm(self, names: Optional[List[str]] = None,
                edge_tables: bool = True) -> Dict[str, ACTIndex]:
        """Materialize indexes and their hot-path artifacts, fork-safely.

        Materializes every registered name (or just ``names``) and runs
        :func:`prewarm_index` on each, so nothing on the serving hot
        path is built lazily afterwards. Called in a pre-fork parent
        this leaves no registry or executor lock held and no thread
        running, making the registry safe to inherit through ``fork``:
        children serve from the parent's built (and, for mmap-loaded
        node pools, page-cache-shared) artifacts.
        """
        out: Dict[str, ACTIndex] = {}
        for name in (self.names() if names is None else list(names)):
            out[name] = prewarm_index(self.get(name),
                                      edge_table=edge_tables)
        return out

    def save(self, name: str, path: Union[str, Path]) -> None:
        """Persist the (materialized) index to ``path``."""
        serialize.save_index(self.get(name), path)

    def evict(self, name: str) -> None:
        """Drop the pinned record; the next ``get`` re-materializes.

        The generation counter is kept, so the re-materialized index
        gets a *new* generation number — stale caches keyed by the old
        generation can never answer for the new one.
        """
        registration = self._registration(name)
        with registration.lock:
            self.materialized.pop(name, None)
            registration.record = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._registrations)

    def is_materialized(self, name: str) -> bool:
        return self._registration(name).record is not None

    def generation(self, name: str) -> int:
        """The newest generation number handed out for ``name``."""
        return self._registration(name).generation

    def describe(self, name: str) -> dict:
        """Status dict for ``/stats`` and the admin listing; never
        triggers materialization."""
        registration = self._registration(name)
        record = registration.record
        info: dict = {
            "name": name,
            "materialized": record is not None,
            "generation": registration.generation,
            "source": registration.source,
        }
        if registration.path is not None:
            info["path"] = str(registration.path)
            if registration.mmap_mode is not None:
                info["mmap_mode"] = registration.mmap_mode
        if record is not None:
            core = record.index.core
            info.update({
                "num_polygons": record.index.num_polygons,
                "precision_meters": record.index.precision_meters,
                "boundary_level": record.index.boundary_level,
                "trie_bytes": core.size_bytes,
                "bytes": core.total_bytes,
                "materialize_seconds": record.materialize_seconds,
                # per-core descent telemetry (this process, this
                # generation); exported as per-index /metrics gauges
                "descent_batches": core.descent_batches,
                "descent_points": core.descent_points,
                "descent_seconds": core.descent_seconds,
            })
            if record.mmap_mode is not None:
                info["mmap_mode"] = record.mmap_mode
        return info

    def _registration(self, name: str) -> _Registration:
        with self._lock:
            registration = self._registrations.get(name)
        if registration is None:
            raise UnknownIndexError(
                f"unknown index {name!r} (registered: {self.names()})"
            )
        return registration
