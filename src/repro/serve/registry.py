"""Index registry: named, lazily materialized, pinned ACT indexes.

Every pre-serve entry point (CLI, benchmarks, examples) rebuilt its index
per process and threw it away. The registry gives indexes names and
lifetimes: a name maps to either a *builder* (a zero-argument callable
returning an :class:`~repro.act.index.ACTIndex`) or a *path* (an ``.npz``
written by :mod:`repro.act.serialize`). The first ``get`` materializes
the index — build or load — and pins it for every later request; builds
of distinct names can proceed concurrently, while concurrent ``get`` of
the same name build exactly once (per-name locks).

A pinned index *is* its columnar :class:`~repro.act.core.ACTCore` — the
flat arrays exist from construction (builds export them, loads
materialize them straight from the ``.npz``), so there is no lazy
freeze step to race and cold loads never rebuild a Python trie.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..act import serialize
from ..act.index import ACTIndex
from ..errors import ServeError, UnknownIndexError


def prewarm_index(index: ACTIndex, edge_table: bool = True) -> ACTIndex:
    """Pre-build one index's hot-path artifacts for pre-fork binding.

    Serving-layer alias for :meth:`repro.act.index.ACTIndex.prewarm` —
    the logic lives on the index so lower layers (``join/parallel.py``)
    share the same fork discipline without importing the serving stack.
    """
    return index.prewarm(edge_table=edge_table)


@dataclass
class _Registration:
    """One named index: how to materialize it, and the pinned instance."""

    name: str
    builder: Optional[Callable[[], ACTIndex]] = None
    path: Optional[Path] = None
    mmap_mode: Optional[str] = None
    index: Optional[ACTIndex] = None
    materialize_seconds: Optional[float] = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class IndexRegistry:
    """Named ACT indexes, built or loaded on first use and reused after."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._registrations: Dict[str, _Registration] = {}
        #: Lock-free hot-path view: name -> pinned index. Plain dict reads
        #: are GIL-atomic, so request threads skip the registry lock.
        self.materialized: Dict[str, ACTIndex] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, builder: Callable[[], ACTIndex]) -> None:
        """Register ``name`` to be built by ``builder`` on first use."""
        self._add(_Registration(name=name, builder=builder))

    def register_path(self, name: str, path: Union[str, Path],
                      mmap_mode: Optional[str] = None) -> None:
        """Register ``name`` to be loaded from a serialized index file.

        ``mmap_mode="r"`` memory-maps the node pool from the archive on
        materialization (lazy cold start, page-cache sharing across
        forked workers; see :func:`repro.act.serialize.load_index`).
        """
        self._add(_Registration(name=name, path=Path(path),
                                mmap_mode=mmap_mode))

    def register_index(self, name: str, index: ACTIndex) -> None:
        """Register an already-built index (pinned immediately)."""
        self._add(_Registration(name=name, index=index,
                                materialize_seconds=0.0))

    def _add(self, registration: _Registration) -> None:
        with self._lock:
            if registration.name in self._registrations:
                raise ServeError(
                    f"index {registration.name!r} is already registered"
                )
            self._registrations[registration.name] = registration
            # publish pre-built indexes to the hot-path view while still
            # holding the registry lock: a concurrent evict() cannot even
            # resolve the registration until we release it, so pinning
            # and registration are one atomic step
            if registration.index is not None:
                self.materialized[registration.name] = registration.index

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def get(self, name: str) -> ACTIndex:
        """The pinned index for ``name``, building/loading it on first use."""
        index = self.materialized.get(name)
        if index is not None:
            return index
        registration = self._registration(name)
        with registration.lock:
            if registration.index is None:
                start = time.perf_counter()
                if registration.path is not None:
                    index = serialize.load_index(
                        registration.path,
                        mmap_mode=registration.mmap_mode)
                else:
                    assert registration.builder is not None
                    index = registration.builder()
                # pre-warm the hot-path artifacts while we still hold
                # the materialization lock: the threaded serve front
                # should never pay the executor/edge-table build (or
                # race it) inside a request
                _ = index.executor.edge_table
                registration.materialize_seconds = (
                    time.perf_counter() - start
                )
                registration.index = index
                self.materialized[registration.name] = index
            return registration.index

    def prewarm(self, names: Optional[List[str]] = None,
                edge_tables: bool = True) -> Dict[str, ACTIndex]:
        """Materialize indexes and their hot-path artifacts, fork-safely.

        Materializes every registered name (or just ``names``) and runs
        :func:`prewarm_index` on each, so nothing on the serving hot
        path is built lazily afterwards. Called in a pre-fork parent
        this leaves no registry or executor lock held and no thread
        running, making the registry safe to inherit through ``fork``:
        children serve from the parent's built (and, for mmap-loaded
        node pools, page-cache-shared) artifacts.
        """
        out: Dict[str, ACTIndex] = {}
        for name in (self.names() if names is None else list(names)):
            out[name] = prewarm_index(self.get(name),
                                      edge_table=edge_tables)
        return out

    def save(self, name: str, path: Union[str, Path]) -> None:
        """Persist the (materialized) index to ``path``."""
        serialize.save_index(self.get(name), path)

    def evict(self, name: str) -> None:
        """Drop the pinned instance; the next ``get`` re-materializes."""
        registration = self._registration(name)
        with registration.lock:
            self.materialized.pop(name, None)
            registration.index = None
            registration.materialize_seconds = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._registrations)

    def is_materialized(self, name: str) -> bool:
        return self._registration(name).index is not None

    def describe(self, name: str) -> dict:
        """Status dict for ``/stats``; never triggers materialization."""
        registration = self._registration(name)
        info: dict = {
            "name": name,
            "materialized": registration.index is not None,
            "source": "path" if registration.path is not None else (
                "index" if registration.builder is None else "builder"
            ),
        }
        if registration.path is not None:
            info["path"] = str(registration.path)
            if registration.mmap_mode is not None:
                info["mmap_mode"] = registration.mmap_mode
        index = registration.index
        if index is not None:
            info.update({
                "num_polygons": index.num_polygons,
                "precision_meters": index.precision_meters,
                "boundary_level": index.boundary_level,
                "trie_bytes": index.core.size_bytes,
                "materialize_seconds": registration.materialize_seconds,
            })
        return info

    def _registration(self, name: str) -> _Registration:
        with self._lock:
            registration = self._registrations.get(name)
        if registration is None:
            raise UnknownIndexError(
                f"unknown index {name!r} (registered: {self.names()})"
            )
        return registration
