"""Baseline file: grandfathered findings.

The baseline is a checked-in JSON file listing finding fingerprints
(``rule``/``path``/``message`` — deliberately line-number free, see
:meth:`repro.lint.findings.Finding.fingerprint`) that are known and
accepted. Findings matching a baseline entry are still reported, but
marked ``baselined`` and excluded from the gate's exit code.

The intended workflow when adopting a new rule over a large codebase
is: run with ``--write-baseline`` to snapshot the existing debt, commit
the file, and burn it down over time. For this repo the acceptance bar
is stricter — the shipped baseline stays empty for error-severity
rules; genuine violations get fixed, not grandfathered.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Set, Tuple

from .findings import Finding

_FORMAT_VERSION = 1

Fingerprint = Tuple[str, str, str]  # (rule, path, message)


def _key(finding: Finding) -> Fingerprint:
    fp = finding.fingerprint()
    return (fp["rule"], fp["path"], fp["message"])


class Baseline:
    """A set of grandfathered finding fingerprints."""

    def __init__(self, entries: Set[Fingerprint] = frozenset()) -> None:
        self._entries: Set[Fingerprint] = set(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, finding: Finding) -> bool:
        return _key(finding) in self._entries

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load from ``path``; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            (e["rule"], e["path"], e["message"])
            for e in data.get("findings", [])
        }
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls({_key(f) for f in findings})

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in sorted(self._entries)
        ]
        payload = {"version": _FORMAT_VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")

    def apply(self, findings: List[Finding]) -> List[Finding]:
        """Return ``findings`` with matching ones marked baselined."""
        out: List[Finding] = []
        for finding in findings:
            if finding in self:
                out.append(Finding(
                    rule=finding.rule, path=finding.path,
                    line=finding.line, severity=finding.severity,
                    message=finding.message, baselined=True))
            else:
                out.append(finding)
        return out
