"""The lint engine: collect files, run rules, filter, report.

Orchestration order matters and is fixed:

1. parse every ``.py`` file under the given paths into a
   :class:`FileContext` (a file that fails to parse becomes a single
   ``PARSE`` error finding — the gate should fail loudly, not skip);
2. run per-file rules on each context, then cross-file rules on the
   whole list;
3. drop findings suppressed by a same-line
   ``# repro-lint: ignore[rule-id]`` pragma;
4. mark findings matching the baseline as grandfathered;
5. sort by location.

Exit-code policy (see :func:`LintResult.gate_failures`): unbaselined
*error*-severity findings fail the gate; warnings only fail under
``--strict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .baseline import Baseline
from .findings import SEVERITY_ERROR, Finding, summarize
from .rules import CrossFileRule, FileContext, Rule, all_rules

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def collect_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, sorted, hidden dirs skipped."""
    seen = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = []
        for candidate in candidates:
            parts = candidate.parts
            if any(p in _SKIP_DIRS or p.startswith(".") for p in parts
                   if p not in (".", "..")):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


@dataclass
class LintResult:
    findings: List[Finding]
    files_checked: int
    rules: List[Rule]

    @property
    def summary(self) -> Dict[str, int]:
        return summarize(self.findings)

    def gate_failures(self, strict: bool = False) -> List[Finding]:
        """Findings that should fail the gate."""
        out = []
        for finding in self.findings:
            if finding.baselined:
                continue
            if finding.severity == SEVERITY_ERROR or strict:
                out.append(finding)
        return out


def run(paths: Sequence[Path], *, root: Optional[Path] = None,
        baseline: Optional[Baseline] = None,
        rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Run the engine over ``paths``.

    ``root`` anchors repo-relative finding paths (defaults to the
    current working directory — run from the repo root); ``rules``
    defaults to the full shipped catalog.
    """
    root = root or Path.cwd()
    active: List[Rule] = list(rules) if rules is not None else all_rules()
    per_file = [r for r in active if not r.cross_file]
    cross = [r for r in active if isinstance(r, CrossFileRule)]

    ctxs: List[FileContext] = []
    findings: List[Finding] = []
    files_checked = 0
    for path in collect_files(paths):
        files_checked += 1
        rel = _relpath(path, root)
        try:
            ctxs.append(FileContext.parse(path, rel))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="PARSE", path=rel, line=exc.lineno or 1,
                severity=SEVERITY_ERROR,
                message=f"file does not parse: {exc.msg}"))

    for ctx in ctxs:
        for rule in per_file:
            for finding in rule.check_file(ctx):
                if not ctx.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)

    ctx_by_path = {ctx.relpath: ctx for ctx in ctxs}
    for rule in cross:
        for finding in rule.check_project(ctxs):
            ctx = ctx_by_path.get(finding.path)
            if ctx and ctx.is_suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)

    if baseline is not None:
        findings = baseline.apply(findings)
    findings.sort()
    return LintResult(findings=findings, files_checked=files_checked,
                      rules=active)


def rule_catalog_key(rules: Optional[Sequence[Rule]] = None) -> str:
    """Stable ``id=version`` key for CI cache invalidation."""
    active = list(rules) if rules is not None else all_rules()
    return ",".join(f"{r.id}={r.version}"
                    for r in sorted(active, key=lambda r: r.id))
