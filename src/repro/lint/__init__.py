"""repro.lint — AST-based invariant checker for the serving stack.

Run as ``python -m repro.lint src/``; programmatic entry point is
:func:`repro.lint.engine.run`. See the README "Static analysis"
section for the rule catalog and the pragma/baseline workflow.
"""

from .baseline import Baseline
from .engine import LintResult, rule_catalog_key, run
from .findings import Finding, summarize
from .rules import all_rules

__all__ = [
    "Baseline", "Finding", "LintResult", "all_rules",
    "rule_catalog_key", "run", "summarize",
]
