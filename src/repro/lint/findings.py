"""The finding model: what a rule reports and how it is rendered.

A :class:`Finding` is one violation at one source location. Findings
are value objects — hashable, ordered by location — so the engine can
de-duplicate, sort, baseline-match, and render them without knowing
which rule produced them.

Severities: ``error`` findings fail the gate (CI, the pytest gate, and
``python -m repro.lint``'s exit code); ``warning`` findings are printed
but do not fail unless ``--strict``. Rules pick the severity per
finding — e.g. the hot-path rule reports ``time.time()`` as a warning
(``perf_counter`` preferred) but eager formatting as an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    ``path`` is repo-relative with forward slashes (stable across
    machines — it is the baseline fingerprint's key); ``line`` is
    1-based. ``message`` states the invariant broken and, where
    practical, the offending expression.
    """

    path: str
    line: int
    rule: str = field(compare=False)
    severity: str = field(compare=False)
    message: str = field(compare=False)
    #: Whether a checked-in baseline entry grandfathers this finding
    #: (set by the engine, never by rules).
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> Dict[str, str]:
        """The location-independent identity used by the baseline file.

        Line numbers shift on every edit, so the baseline matches on
        ``(rule, path, message)`` — a grandfathered finding stays
        grandfathered until its code (and therefore its message) moves
        or changes.
        """
        return {"rule": self.rule, "path": self.path,
                "message": self.message}

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        suffix = "  (baselined)" if self.baselined else ""
        return (f"{self.path}:{self.line}: {self.rule} "
                f"{self.severity}: {self.message}{suffix}")


def summarize(findings: List[Finding]) -> Dict[str, int]:
    """Counts by severity, split by baselined status."""
    out = {"errors": 0, "warnings": 0, "baselined": 0}
    for finding in findings:
        if finding.baselined:
            out["baselined"] += 1
        elif finding.severity == SEVERITY_ERROR:
            out["errors"] += 1
        else:
            out["warnings"] += 1
    return out
