"""CLI: ``python -m repro.lint src/ [--format=json] [--strict] ...``.

Exit codes: 0 — gate clean (no unbaselined errors; warnings too, under
``--strict``); 1 — gate failures; 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .engine import rule_catalog_key, run
from .rules import all_rules

DEFAULT_BASELINE = Path(".repro-lint-baseline.json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for the serving stack.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to check")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--baseline", type=Path,
                        default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             "(default: %(default)s; missing = empty)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="snapshot current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the gate")
    parser.add_argument("--root", type=Path, default=None,
                        help="root for repo-relative paths "
                             "(default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--catalog-key", action="store_true",
                        help="print the id=version cache key and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            kind = "cross-file" if rule.cross_file else "per-file"
            print(f"{rule.id}  {rule.name}  [{kind}, {rule.severity}, "
                  f"v{rule.version}]")
            print(f"       {rule.description}")
        return 0
    if args.catalog_key:
        print(rule_catalog_key())
        return 0
    if not args.paths:
        print("error: no paths given (try: python -m repro.lint src/)",
              file=sys.stderr)
        return 2

    baseline = Baseline.load(args.baseline)
    result = run(args.paths, root=args.root, baseline=baseline)

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(f"wrote {len(result.findings)} fingerprint(s) to "
              f"{args.baseline}")
        return 0

    failures = result.gate_failures(strict=args.strict)
    if args.format == "json":
        print(json.dumps({
            "files_checked": result.files_checked,
            "summary": result.summary,
            "gate_failures": len(failures),
            "catalog_key": rule_catalog_key(result.rules),
            "findings": [f.to_json() for f in result.findings],
        }, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        s = result.summary
        print(f"checked {result.files_checked} file(s): "
              f"{s['errors']} error(s), {s['warnings']} warning(s), "
              f"{s['baselined']} baselined")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
