"""RL001 — lock discipline for registry/lifecycle shared state.

Origin bug: PR 4's audit found ``register_index`` publishing a
half-built registration (non-atomic insert), and PR 8's fleet reloads
racing ``converged``/``last_error`` between the apply thread and the
poller. The invariant: inside the classes that own fleet-visible
mutable state (``IndexRegistry``, ``FleetLifecycle``), every write to
an instance attribute established in ``__init__`` must happen lexically
under a ``with <...lock...>:`` block.

Two escapes, both deliberate conventions of this codebase:

* ``__init__`` itself — no other thread can hold a reference yet;
* methods named ``*_locked`` — the documented "caller holds the lock"
  convention (``_materialize_locked`` et al.). The rule trusts the
  name; reviewers enforce the call sites.

Attributes whose own name mentions ``lock`` are exempt (assigning the
lock is how you get one).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..findings import Finding
from .base import FileContext, Rule, with_lock_lines

#: Classes whose instance state is shared across threads.
GUARDED_CLASSES = frozenset({"IndexRegistry", "FleetLifecycle"})

#: Method calls that mutate a container in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "appendleft", "sort",
})


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` if ``node`` is ``self.X``, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _written_attrs(stmt: ast.AST) -> List[ast.AST]:
    """Targets of ``stmt`` that write through ``self.<attr>``."""
    targets: List[ast.AST] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        raw = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in raw:
            for node in ast.walk(target):
                if isinstance(node, (ast.Attribute, ast.Subscript)):
                    targets.append(node)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            for node in ast.walk(target):
                if isinstance(node, (ast.Attribute, ast.Subscript)):
                    targets.append(node)
    return targets


def _target_attr(node: ast.AST) -> Optional[str]:
    """Shared-attr name written by a target node, unwrapping subscripts."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node)


class LockDisciplineRule(Rule):
    id = "RL001"
    name = "lock-discipline"
    description = (
        "Writes to IndexRegistry/FleetLifecycle instance state must be "
        "lexically under `with <lock>:`; `__init__` and `*_locked` "
        "methods (caller-holds-lock convention) are exempt.")
    version = 1

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.ClassDef)
                    and node.name in GUARDED_CLASSES):
                yield from self._check_class(ctx, node)

    # -- per class ------------------------------------------------------
    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        shared = self._shared_attrs(cls)
        if not shared:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or item.name.endswith("_locked"):
                continue
            yield from self._check_method(ctx, cls, item, shared)

    @staticmethod
    def _shared_attrs(cls: ast.ClassDef) -> Set[str]:
        shared: Set[str] = set()
        for item in cls.body:
            if (isinstance(item, ast.FunctionDef)
                    and item.name == "__init__"):
                for stmt in ast.walk(item):
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        targets = (stmt.targets
                                   if isinstance(stmt, ast.Assign)
                                   else [stmt.target])
                        for target in targets:
                            attr = _self_attr(target)
                            if attr and "lock" not in attr.lower():
                                shared.add(attr)
        return shared

    def _check_method(self, ctx: FileContext, cls: ast.ClassDef,
                      func: ast.AST, shared: Set[str],
                      ) -> Iterable[Finding]:
        locked = with_lock_lines(func)
        seen: Dict[int, Set[str]] = {}
        for node in ast.walk(func):
            attr: Optional[str] = None
            # Direct writes: self.X = / self.X[...] = / del self.X[...]
            for target in _written_attrs(node):
                cand = _target_attr(target)
                if cand in shared:
                    attr = cand
                    break
            # In-place mutators: self.X.append(...) etc.
            if attr is None and isinstance(node, ast.Call):
                func_node = node.func
                if (isinstance(func_node, ast.Attribute)
                        and func_node.attr in _MUTATORS):
                    cand = _self_attr(func_node.value)
                    if cand in shared:
                        attr = cand
            if attr is None:
                continue
            line = node.lineno
            if line in locked:
                continue
            if attr in seen.get(line, set()):
                continue
            seen.setdefault(line, set()).add(attr)
            yield self.finding(
                ctx, node,
                f"{cls.name}.{getattr(func, 'name', '?')} writes shared "
                f"attribute `self.{attr}` outside `with <lock>:`; hold "
                f"the instance lock or rename the method `*_locked` if "
                f"the caller holds it")
