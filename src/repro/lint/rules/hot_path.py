"""RL003 — hot-path hygiene.

Origin: the paper's headline number is per-lookup latency measured in
hundreds of nanoseconds; PR 5's perf work showed a single stray
f-string or ``json.dumps`` in ``query_batch`` is visible on the
histogram. The configured hot functions (the query entry points, the
refinement kernels, and the binary frame handlers) must not:

* call ``logging``/``logger`` methods,
* call ``json.*``,
* build f-strings or call ``.format(...)`` eagerly — *except* inside a
  ``raise`` statement or an ``except`` handler body, where the
  formatting only ever runs on the cold error path,
* loop element-wise over an array parameter (``for x in lngs`` /
  ``range(len(lngs))`` / ``enumerate`` / ``zip`` of parameters) — the
  vectorised path exists, use it,
* call ``time.time()`` — flagged as a *warning* in favour of
  ``time.perf_counter()``.

Nested ``def``s/lambdas inside a hot function are skipped: they run on
somebody else's schedule.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..findings import SEVERITY_WARNING, Finding
from .base import (FileContext, Rule, body_nodes, dotted_name,
                   iter_functions, param_names)

#: Functions on the measured path. ``_handle``/``_process``/
#: ``data_received`` are the binary frame handlers in serve/aserver.py.
HOT_FUNCTIONS = frozenset({
    "query", "query_batch", "refine", "refine_pairs", "lookup_entries",
    "_handle", "_process", "data_received",
})

_LOGGING_ROOTS = frozenset({"logging", "logger", "log"})


class HotPathRule(Rule):
    id = "RL003"
    name = "hot-path-hygiene"
    description = (
        "Hot-path functions (query/query_batch/refine/lookup_entries/"
        "binary frame handlers) must not log, touch json, format "
        "strings eagerly (raise sites exempt), or loop element-wise "
        "over array parameters; time.time() is a warning "
        "(perf_counter preferred).")
    version = 1

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for func, _cls in iter_functions(ctx.tree):
            if getattr(func, "name", None) in HOT_FUNCTIONS:
                yield from self._check_hot(ctx, func)

    def _check_hot(self, ctx: FileContext,
                   func: ast.AST) -> Iterable[Finding]:
        name = getattr(func, "name", "?")
        params = param_names(func)
        # Formatting under `raise` or inside an `except` body only
        # evaluates on the error path. Format specs (`:02x`) parse as
        # *nested* JoinedStr nodes — exempt those too so one f-string
        # is one finding.
        raise_exempt: Set[int] = set()
        for node in body_nodes(func):
            if isinstance(node, ast.Raise):
                for sub in ast.walk(node):
                    raise_exempt.add(id(sub))
            elif isinstance(node, ast.ExceptHandler):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        raise_exempt.add(id(sub))
            elif isinstance(node, ast.JoinedStr):
                for sub in ast.walk(node):
                    if sub is not node:
                        raise_exempt.add(id(sub))

        for node in body_nodes(func):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, func, name, node,
                                            raise_exempt)
            elif (isinstance(node, ast.JoinedStr)
                    and id(node) not in raise_exempt):
                yield self.finding(
                    ctx, node,
                    f"f-string built eagerly in hot function `{name}`; "
                    f"hoist it off the hot path (raise sites are "
                    f"exempt)")
            elif isinstance(node, ast.For):
                param = self._loops_over_param(node, params)
                if param is not None:
                    yield self.finding(
                        ctx, node,
                        f"element-wise loop over array parameter "
                        f"`{param}` in hot function `{name}`; use the "
                        f"vectorised path")

    def _check_call(self, ctx: FileContext, func: ast.AST, name: str,
                    call: ast.Call, raise_exempt: Set[int],
                    ) -> Iterable[Finding]:
        dn = dotted_name(call.func)
        if dn is not None:
            root = dn.split(".", 1)[0]
            if root in _LOGGING_ROOTS or ".logger." in f".{dn}.":
                yield self.finding(
                    ctx, call,
                    f"logging call `{dn}` in hot function `{name}`; "
                    f"log outside the measured path")
                return
            if root == "json":
                yield self.finding(
                    ctx, call,
                    f"json call `{dn}` in hot function `{name}`; "
                    f"serialise outside the measured path")
                return
            if dn == "time.time":
                yield self.finding(
                    ctx, call,
                    f"time.time() in hot function `{name}`; prefer "
                    f"time.perf_counter() for interval timing",
                    severity=SEVERITY_WARNING)
                return
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr == "format"
                and id(call) not in raise_exempt):
            yield self.finding(
                ctx, call,
                f"str.format() in hot function `{name}`; hoist it off "
                f"the hot path (raise sites are exempt)")

    @staticmethod
    def _loops_over_param(loop: ast.For,
                          params: Set[str]) -> Optional[str]:
        """Parameter name iterated element-wise, if any."""
        it = loop.iter
        # for x in param:
        if isinstance(it, ast.Name) and it.id in params:
            return it.id
        if isinstance(it, ast.Call):
            dn = dotted_name(it.func)
            # for i in range(len(param)): / enumerate(param) /
            # zip(param, other)
            if dn in ("enumerate", "zip"):
                for arg in it.args:
                    if isinstance(arg, ast.Name) and arg.id in params:
                        return arg.id
            if dn == "range":
                for sub in ast.walk(it):
                    if (isinstance(sub, ast.Call)
                            and dotted_name(sub.func) == "len"
                            and sub.args
                            and isinstance(sub.args[0], ast.Name)
                            and sub.args[0].id in params):
                        return sub.args[0].id
        return None
