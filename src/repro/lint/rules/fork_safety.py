"""RL006 — no thread/socket/Manager construction at module import time.

Origin: the fleet (PR 8) is pre-fork — workers are ``fork()``ed after
the parent imports the serving modules. A thread, socket, or
``multiprocessing.Manager`` constructed at import time is silently
duplicated (threads don't survive fork; sockets and Manager pipes get
shared fds), producing exactly the class of "works single-process,
corrupts under the fleet" bug the chaos harness exists to catch.
Pre-fork resources must flow through the ``prewarm`` seam so each
worker constructs its own after fork.

The rule scans module-level statements (including class bodies — class
attributes evaluate at import too), descending into ``if``/``try``/
``with`` blocks but not into function bodies, and exempts the
``if __name__ == "__main__":`` guard (that branch never runs on
import).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional

from ..findings import Finding
from .base import FileContext, Rule, dotted_name

#: Fully dotted constructors that must not run at import time.
_FORBIDDEN_DOTTED = frozenset({
    "threading.Thread", "threading.Timer",
    "multiprocessing.Manager", "multiprocessing.Pool",
    "multiprocessing.Process",
    "socket.socket", "socket.create_connection",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "subprocess.Popen",
    "os.fork",
})

#: Bare names covering `from threading import Thread`-style imports.
_FORBIDDEN_BARE = frozenset({
    "Thread", "Timer", "Manager", "Pool", "Process",
    "ThreadPoolExecutor", "ProcessPoolExecutor", "Popen",
})


def _is_main_guard(node: ast.If) -> bool:
    test = node.test
    if not isinstance(test, ast.Compare):
        return False
    names = [dotted_name(test.left)]
    names.extend(dotted_name(c) for c in test.comparators)
    return "__name__" in [n for n in names if n]


def _module_level(tree: ast.AST) -> Iterator[ast.AST]:
    """Statements that execute on import (incl. class bodies)."""
    stack: List[ast.AST] = list(getattr(tree, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.If) and _is_main_guard(node):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class ForkSafetyRule(Rule):
    id = "RL006"
    name = "fork-safety"
    description = (
        "No thread/socket/Manager/executor construction at module "
        "import time; pre-fork resources must flow through the "
        "prewarm seam (`if __name__` guards exempt).")
    version = 1

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in _module_level(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._forbidden_label(node)
            if label is None:
                continue
            yield self.finding(
                ctx, node,
                f"`{label}` constructed at module import time; a "
                f"pre-fork fleet duplicates it across workers — build "
                f"it post-fork via the prewarm seam")

    @staticmethod
    def _forbidden_label(call: ast.Call) -> Optional[str]:
        dn = dotted_name(call.func)
        if dn is None:
            return None
        if dn in _FORBIDDEN_DOTTED or dn in _FORBIDDEN_BARE:
            return dn
        # `concurrent.futures` imported under an alias still ends with
        # the executor class name.
        tail = dn.split(".")[-1]
        if tail in _FORBIDDEN_BARE and "." in dn:
            return dn
        return None
