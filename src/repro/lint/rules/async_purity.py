"""RL002 — no blocking calls inside ``async def``.

Origin bug: PR 7's asyncio front had its event loop shared by every
connection; one synchronous sleep or blocking socket read inside a
coroutine stalls all of them (the keep-alive desync audit traced to
exactly this shape). The invariant: coroutine bodies never call the
blocking stdlib surface — ``time.sleep``, synchronous socket ops, file
I/O, ``Lock.acquire`` — they delegate to executors or the ``await``-
native equivalents.

Nested *sync* ``def``s inside a coroutine are not flagged: they run
when somebody calls them, which is a call-site question, not a
definition-site one.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..findings import Finding
from .base import FileContext, Rule, body_nodes, dotted_name

#: Fully dotted calls that block the event loop.
_BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "socket.socket", "socket.create_connection",
    "socket.getaddrinfo", "socket.gethostbyname",
    "subprocess.run", "subprocess.check_output", "subprocess.check_call",
    "os.system", "os.waitpid",
})

#: Bare names (``from time import sleep``; builtin ``open``).
_BLOCKING_NAMES = frozenset({"sleep", "open"})

#: Method names whose receivers are (in this codebase) sockets, locks,
#: or file handles — all blocking when called synchronously.
_BLOCKING_METHODS = frozenset({
    "acquire",                              # Lock/Semaphore
    "recv", "recv_into", "sendall", "accept",  # socket
    "read_text", "write_text", "read_bytes", "write_bytes",  # Path I/O
})


class AsyncPurityRule(Rule):
    id = "RL002"
    name = "async-purity"
    description = (
        "`async def` bodies must not make blocking calls (time.sleep, "
        "sync socket ops, file I/O, Lock.acquire); use the awaitable "
        "equivalent or an executor.")
    version = 1

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)

    def _check_coroutine(self, ctx: FileContext,
                         func: ast.AsyncFunctionDef,
                         ) -> Iterable[Finding]:
        for node in body_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            label = self._blocking_label(node)
            if label is None:
                continue
            yield self.finding(
                ctx, node,
                f"blocking call `{label}` inside `async def "
                f"{func.name}`; await the async equivalent or move it "
                f"to an executor")

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        dn = dotted_name(call.func)
        if dn is not None:
            if dn in _BLOCKING_DOTTED:
                return dn
            if dn in _BLOCKING_NAMES:
                return dn
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in _BLOCKING_METHODS:
                receiver = dotted_name(call.func.value)
                return (f"{receiver}.{call.func.attr}" if receiver
                        else f"<expr>.{call.func.attr}")
        return None
