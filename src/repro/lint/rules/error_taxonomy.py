"""RL005 — raises in the serving layer use the ``repro.errors`` taxonomy.

Origin bug: PR 8's resilience audit — a bare ``ValueError`` escaping
``_parse_budget`` surfaced to clients as an opaque 500 with no
machine-readable ``code``, and the binary front closed the connection
instead of answering a typed error frame. The invariant: code under
``src/repro/serve/`` never raises builtin exception types directly;
it raises ``repro.errors`` classes (or local subclasses of them, e.g.
``FrameError(ServeError)``) that carry a stable wire code.

Bare ``raise`` (re-raise) and ``raise exc_var`` are fine — the rule
only matches raising a *builtin* exception class by name. Intentional
builtin raises (the chaos injector throwing ``OSError`` on purpose)
use the inline pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..findings import Finding
from .base import FileContext, Rule, dotted_name

#: Directory the taxonomy applies to (repo-relative prefix).
SCOPE_PREFIX = "src/repro/serve/"

#: Builtin exception classes that must not be raised in serve/.
#: (NotImplementedError / AssertionError stay allowed: they signal
#: programmer error, not a client-visible failure.)
_FORBIDDEN_BUILTINS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError",
    "KeyError", "IndexError", "AttributeError", "RuntimeError",
    "LookupError", "ArithmeticError", "ZeroDivisionError",
    "OSError", "IOError", "EnvironmentError", "ConnectionError",
    "ConnectionResetError", "ConnectionAbortedError",
    "BrokenPipeError", "TimeoutError", "InterruptedError",
    "StopIteration", "EOFError", "BufferError", "MemoryError",
    "OverflowError", "UnicodeDecodeError", "UnicodeEncodeError",
})


class ErrorTaxonomyRule(Rule):
    id = "RL005"
    name = "error-taxonomy"
    description = (
        "Raises under src/repro/serve/ must use repro.errors classes "
        "(or local subclasses); builtin Exception/ValueError/OSError "
        "raises surface as opaque 500s.")
    version = 1

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.relpath.startswith(SCOPE_PREFIX):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_class(node.exc)
            if name is None or name not in _FORBIDDEN_BUILTINS:
                continue
            yield self.finding(
                ctx, node,
                f"raises builtin `{name}` in the serving layer; raise "
                f"a repro.errors class (or a local subclass) so the "
                f"failure carries a stable wire code")

    @staticmethod
    def _raised_class(exc: ast.AST) -> Optional[str]:
        """Class name raised, for ``raise Cls(...)`` / ``raise Cls``."""
        if isinstance(exc, ast.Call):
            exc = exc.func
        dn = dotted_name(exc)
        if dn is None:
            return None
        return dn.split(".")[-1]
