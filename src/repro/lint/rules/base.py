"""Rule framework: file contexts, the rule base classes, AST helpers.

Rules come in two shapes:

* :class:`Rule` — per-file: ``check_file(ctx)`` sees one parsed module
  at a time and yields findings for it;
* :class:`CrossFileRule` — whole-project: ``check_project(ctxs)`` sees
  every parsed module at once, for invariants that live *between*
  files (e.g. "every lazily-incremented metric family has an eager
  registration site somewhere").

Every rule carries a ``version``; bump it whenever the rule's logic
changes so CI caches keyed on rule versions invalidate (see the
``lint-deep`` job).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..findings import SEVERITY_ERROR, Finding

#: Inline suppression: ``# repro-lint: ignore[RL001]`` (or a comma
#: list) on the line a finding is reported at.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """``{line: {rule ids ignored on it}}`` from inline pragmas."""
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            pragmas[lineno] = {
                rule.strip() for rule in match.group(1).split(",")
                if rule.strip()
            }
    return pragmas


@dataclass
class FileContext:
    """One parsed source file, shared by every rule."""

    path: Path
    relpath: str  # repo-relative, forward slashes
    source: str
    tree: ast.AST
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, relpath=relpath, source=source, tree=tree,
                   pragmas=parse_pragmas(source))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return rule_id in self.pragmas.get(line, ())


class Rule:
    """Base class: one invariant, checked per file."""

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = SEVERITY_ERROR
    #: Bumped on logic changes; CI caches key on the catalog of
    #: ``(id, version)`` pairs.
    version: int = 1
    cross_file: bool = False

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                severity: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            severity=self.severity if severity is None else severity,
            message=message,
        )


class CrossFileRule(Rule):
    """Base class: one invariant, checked over the whole project."""

    cross_file = True

    def check_project(self, ctxs: List[FileContext],
                      ) -> Iterable[Finding]:
        raise NotImplementedError

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.AST,
                   ) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """Every (async) function definition with its enclosing class name."""
    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: List[Tuple[ast.AST, Optional[str]]] = []
            self._class: List[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self._class.append(node.name)
            self.generic_visit(node)
            self._class.pop()

        def _function(self, node: ast.AST) -> None:
            self.found.append(
                (node, self._class[-1] if self._class else None))
            self.generic_visit(node)

        visit_FunctionDef = _function
        visit_AsyncFunctionDef = _function

    visitor = _Visitor()
    visitor.visit(tree)
    return iter(visitor.found)


def body_nodes(func: ast.AST, *, skip_nested: bool = True,
               ) -> Iterator[ast.AST]:
    """Every node lexically inside ``func``'s own body.

    ``skip_nested`` stops at nested function/class definitions: a
    closure defined on the hot path runs on somebody else's schedule,
    and its body is visited when the walker reaches *it*.
    """
    stack: List[ast.AST] = list(getattr(func, "body", []))
    nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
              ast.Lambda)
    while stack:
        node = stack.pop()
        yield node
        # a nested definition is yielded (its decorators/name are part
        # of this body) but never descended into
        if skip_nested and isinstance(node, nested):
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def with_lock_lines(func: ast.AST) -> Set[int]:
    """Line numbers lexically covered by a ``with <...lock...>:`` block.

    The context expression is matched textually — any ``with`` whose
    item mentions ``lock`` (``self._lock``, ``registration.lock``,
    ``self._apply_lock.acquire``-style wrappers) counts. Lexical
    coverage is what the lock-discipline rule enforces: holding the
    lock somewhere up the call stack is invisible here by design —
    helpers that rely on a caller's lock must say so with the
    ``_locked`` naming convention.
    """
    covered: Set[int] = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        guarded = any(
            "lock" in ast.dump(item.context_expr).lower()
            for item in node.items
        )
        if not guarded:
            continue
        end = getattr(node, "end_lineno", node.lineno)
        covered.update(range(node.lineno, (end or node.lineno) + 1))
    return covered


def param_names(func: ast.AST) -> Set[str]:
    args = getattr(func, "args", None)
    if args is None:
        return set()
    names = {a.arg for a in (args.posonlyargs + args.args
                             + args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    names.discard("self")
    names.discard("cls")
    return names
