"""The rule catalog. New rules: subclass Rule/CrossFileRule, add here."""

from typing import List

from .base import CrossFileRule, FileContext, Rule
from .async_purity import AsyncPurityRule
from .error_taxonomy import ErrorTaxonomyRule
from .fork_safety import ForkSafetyRule
from .hot_path import HotPathRule
from .lock_discipline import LockDisciplineRule
from .telemetry import TelemetryRegistrationRule


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in id order."""
    return [
        LockDisciplineRule(),
        AsyncPurityRule(),
        HotPathRule(),
        TelemetryRegistrationRule(),
        ErrorTaxonomyRule(),
        ForkSafetyRule(),
    ]


__all__ = [
    "Rule", "CrossFileRule", "FileContext", "all_rules",
    "LockDisciplineRule", "AsyncPurityRule", "HotPathRule",
    "TelemetryRegistrationRule", "ErrorTaxonomyRule", "ForkSafetyRule",
]
