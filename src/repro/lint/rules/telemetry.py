"""RL004 — telemetry families must be registered eagerly (cross-file).

Origin bug: PR 7's audit — counter families created lazily on first
``.inc()`` don't exist at scrape time until traffic arrives, so
dashboards see series appear mid-incident and rate() windows start
broken. The invariant since then: every counter/histogram *name* that
is used via a chained ``metrics.counter("x").inc()`` /
``metrics.histogram("x").observe()`` must also have an eager
registration site somewhere in the project — a non-chained
``metrics.counter("x")`` / ``metrics.histogram("x")`` (typically in
``set_telemetry`` / frontend ``__init__``) or a
``metrics.register(counters=(...), histograms=(...))`` call.

Scope notes:

* only receivers whose expression ends in ``metrics`` count (so the
  Prometheus renderer, which *iterates* families, is out of scope);
* non-constant names (``metrics.counter(name_var)``) are skipped —
  dynamic families are the aggregator's business, not this rule's.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..findings import Finding
from .base import CrossFileRule, FileContext, dotted_name

_FAMILY_FACTORIES = frozenset({"counter", "histogram"})
_USE_METHODS = frozenset({"inc", "observe"})


def _is_metrics_receiver(node: ast.AST) -> bool:
    dn = dotted_name(node)
    return dn is not None and (dn == "metrics"
                               or dn.endswith(".metrics")
                               or dn.endswith("_metrics"))


def _family_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    """``(name, call)`` if ``node`` is ``<metrics>.counter("name")``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _FAMILY_FACTORIES
            and _is_metrics_receiver(node.func.value)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)):
        return node.args[0].value, node
    return None


class TelemetryRegistrationRule(CrossFileRule):
    id = "RL004"
    name = "telemetry-registration"
    description = (
        "Every counter/histogram name used via chained "
        "`metrics.counter(name).inc()` / `.histogram(name).observe()` "
        "must have an eager registration site (non-chained factory "
        "call or `metrics.register(...)`) so families exist "
        "pre-traffic.")
    version = 1

    def check_project(self, ctxs: List[FileContext],
                      ) -> Iterable[Finding]:
        registered: Set[str] = set()
        # (name, ctx, node) per lazy chained use.
        uses: List[Tuple[str, FileContext, ast.Call]] = []

        for ctx in ctxs:
            chained: Dict[int, bool] = {}
            # First pass: mark factory calls that are the inner link of
            # a `.inc()` / `.observe()` chain.
            for node in ast.walk(ctx.tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _USE_METHODS):
                    inner = _family_call(node.func.value)
                    if inner is not None:
                        name, call = inner
                        chained[id(call)] = True
                        uses.append((name, ctx, node))
            # Second pass: every other factory call (plus explicit
            # register()) is an eager registration site.
            for node in ast.walk(ctx.tree):
                fam = _family_call(node)
                if fam is not None and not chained.get(id(fam[1])):
                    registered.add(fam[0])
                    continue
                registered.update(self._register_call_names(node))

        for name, ctx, node in uses:
            if name in registered:
                continue
            yield self.finding(
                ctx, node,
                f"metric family `{name}` is used lazily but never "
                f"registered eagerly; families must exist pre-traffic "
                f"— add it to a `metrics.register(...)` /"
                f" `set_telemetry` registration site")

    @staticmethod
    def _register_call_names(node: ast.AST) -> Set[str]:
        """Names in ``metrics.register(counters=..., histograms=...)``."""
        names: Set[str] = set()
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"
                and _is_metrics_receiver(node.func.value)):
            return names
        literal_args: List[ast.AST] = list(node.args)
        literal_args.extend(kw.value for kw in node.keywords
                            if kw.arg in ("counters", "histograms"))
        for arg in literal_args:
            for sub in ast.walk(arg):
                if (isinstance(sub, ast.Constant)
                        and isinstance(sub.value, str)):
                    names.add(sub.value)
        return names
