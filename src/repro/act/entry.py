"""Tagged 8-byte trie entries and 31-bit polygon references.

The paper (Section II, "Adaptive Cell Trie") stores one of four things in
every 8-byte node slot, discriminated by the two least significant bits:

====  =============================================================
tag   meaning
====  =============================================================
0b00  pointer to a child node (or to the sentinel node = "false hit")
0b01  one inlined payload (a 31-bit polygon reference)
0b10  two inlined payloads (two 31-bit polygon references)
0b11  a 31-bit offset into the lookup table (>= 3 references)
====  =============================================================

A 31-bit *polygon reference* packs an interior flag in its least
significant bit (1 = true hit, 0 = candidate hit) and a 30-bit polygon id
above it, so ACT can index up to 2**30 polygons.

This module is pure bit arithmetic on Python ints; the layouts match the
C++ reference implementation bit for bit so the memory accounting in
:mod:`repro.act.stats` reflects the paper's numbers.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import CapacityError

#: Entry tag values (two least significant bits of a slot).
TAG_POINTER = 0b00
TAG_PAYLOAD_1 = 0b01
TAG_PAYLOAD_2 = 0b10
TAG_OFFSET = 0b11

#: A zero slot is a pointer to the sentinel node: a guaranteed miss.
SENTINEL = 0

#: Maximum polygon id (30 usable payload bits).
MAX_POLYGON_ID = (1 << 30) - 1

#: Maximum lookup-table offset (31 bits).
MAX_OFFSET = (1 << 31) - 1

_REF_MASK = (1 << 31) - 1


# ----------------------------------------------------------------------
# Polygon references (31-bit payloads)
# ----------------------------------------------------------------------
def make_ref(polygon_id: int, is_true_hit: bool) -> int:
    """Pack a polygon id and interior flag into a 31-bit reference."""
    if not 0 <= polygon_id <= MAX_POLYGON_ID:
        raise CapacityError(
            f"polygon id {polygon_id} exceeds the 30-bit payload capacity"
        )
    return (polygon_id << 1) | (1 if is_true_hit else 0)


def ref_polygon_id(ref: int) -> int:
    return ref >> 1


def ref_is_true_hit(ref: int) -> bool:
    return bool(ref & 1)


# ----------------------------------------------------------------------
# Entries (tagged 8-byte slots)
# ----------------------------------------------------------------------
def make_pointer(node_index: int) -> int:
    """Pointer entry to the node-pool slot ``node_index`` (0-based).

    Index 0 of the encoded pointer space is reserved for the sentinel, so
    pool index ``i`` is stored as ``i + 1``.
    """
    return (node_index + 1) << 2


def make_payload_1(ref: int) -> int:
    return ((ref & _REF_MASK) << 2) | TAG_PAYLOAD_1


def make_payload_2(ref_a: int, ref_b: int) -> int:
    return (((ref_b & _REF_MASK) << 33)
            | ((ref_a & _REF_MASK) << 2)
            | TAG_PAYLOAD_2)


def make_offset(offset: int) -> int:
    if not 0 <= offset <= MAX_OFFSET:
        raise CapacityError(f"lookup-table offset {offset} exceeds 31 bits")
    return (offset << 2) | TAG_OFFSET


def tag(entry: int) -> int:
    return entry & 0b11


def is_sentinel(entry: int) -> bool:
    return entry == SENTINEL


def pointer_index(entry: int) -> int:
    """Node-pool index of a pointer entry (callers check the tag)."""
    return (entry >> 2) - 1


def payload_refs(entry: int) -> Tuple[int, ...]:
    """The inlined reference(s) of a payload entry."""
    kind = entry & 0b11
    if kind == TAG_PAYLOAD_1:
        return ((entry >> 2) & _REF_MASK,)
    if kind == TAG_PAYLOAD_2:
        return ((entry >> 2) & _REF_MASK, (entry >> 33) & _REF_MASK)
    raise CapacityError(f"entry {entry:#x} has no inlined payloads")


def offset_value(entry: int) -> int:
    return entry >> 2


def encode_refs(refs: List[int], table_offset_for: "OffsetAllocator") -> int:
    """Choose the densest encoding for a reference set.

    One or two references are inlined; three or more go through the lookup
    table, with ``table_offset_for`` mapping the set to its offset.
    """
    if not refs:
        return SENTINEL
    if len(refs) == 1:
        return make_payload_1(refs[0])
    if len(refs) == 2:
        return make_payload_2(refs[0], refs[1])
    return make_offset(table_offset_for(refs))


class OffsetAllocator:
    """Protocol stand-in: callable mapping a ref list to a table offset."""

    def __call__(self, refs: List[int]) -> int:  # pragma: no cover - protocol
        raise NotImplementedError
