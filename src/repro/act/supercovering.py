"""Super covering: merging per-polygon coverings into one cell set.

Section II of the paper: *"Once the coverings of every polygon have been
computed, we merge these individual coverings into a super covering that
represents all polygons. This step involves removing duplicate cells and
resolving conflicts between overlapping cells. The latter may require
additional refinement steps and potentially increases the total number of
cells."*

Concretely:

* every covering cell is **denormalized** to the trie's level granularity
  (its payload replicated over descendants at the next indexable level);
* cells shared by several polygons are **deduplicated** into one cell with
  a merged reference set;
* ancestor/descendant **conflicts** (one polygon's coarse cell containing
  another's finer cells — typical for overlapping geofences) are resolved
  by pushing the ancestor's references down: the ancestor is re-tiled into
  aligned sub-cells, merging into existing descendants and materializing
  the sibling cells that tile the remainder.

The result is a **prefix-free** cell map: no cell is an ancestor of
another, so an ACT lookup returns at most one cell — exactly the paper's
lookup contract.

References are carried as packed 31-bit ints (``polygon_id << 1 | is_true``,
the same layout :mod:`repro.act.entry` inlines into trie slots) to keep the
merge allocation-light at millions of cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..errors import BuildError
from ..grid import cellid
from ..grid.coverer import Covering

#: Packed reference: ``polygon_id << 1 | is_true_hit``.
PackedRef = int


@dataclass
class _LaminarNode:
    """One conflicted cell in a containment (laminar) tree."""

    cell: int
    refs: Set[PackedRef]
    children: List["_LaminarNode"] = field(default_factory=list)


class SuperCovering:
    """The merged, prefix-free cell map for a set of polygons.

    :attr:`cells` maps each indexed cell to its packed reference list
    (possibly containing duplicates only across true/candidate flags —
    the builder normalizes at encode time).
    """

    __slots__ = ("cells", "levels_per_step", "max_cell_level",
                 "num_conflict_cells")

    def __init__(self, cells: Dict[int, List[PackedRef]],
                 levels_per_step: int, max_cell_level: int,
                 num_conflict_cells: int):
        self.cells = cells
        self.levels_per_step = levels_per_step
        self.max_cell_level = max_cell_level
        self.num_conflict_cells = num_conflict_cells

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @classmethod
    def merge(cls, coverings: Iterable[Tuple[int, Covering]],
              levels_per_step: int, max_cell_level: int) -> "SuperCovering":
        """Merge ``(polygon_id, covering)`` pairs into a super covering.

        ``levels_per_step`` is the trie granularity ``g`` (4 for fanout
        256); cells are denormalized so ``level % g == 0`` holds for every
        indexed cell, as required for insertion.
        """
        refs_by_cell: Dict[int, List[PackedRef]] = {}
        for polygon_id, covering in coverings:
            for cell, is_interior in covering.all_cells():
                if cellid.level(cell) > max_cell_level:
                    raise BuildError(
                        f"covering cell at level {cellid.level(cell)} "
                        f"exceeds max indexable level {max_cell_level}"
                    )
                packed = (polygon_id << 1) | (1 if is_interior else 0)
                refs = refs_by_cell.get(cell)
                if refs is None:
                    refs_by_cell[cell] = [packed]
                else:
                    refs.append(packed)

        resolved, conflict_cells = _resolve_conflicts(
            refs_by_cell, levels_per_step
        )
        return cls(resolved, levels_per_step, max_cell_level, conflict_cells)

    def validate_prefix_free(self) -> None:
        """Assert no indexed cell contains another (tests call this)."""
        ordered = sorted(self.cells, key=cellid.range_min)
        for prev, curr in zip(ordered, ordered[1:]):
            if cellid.range_max(prev) >= cellid.range_min(curr):
                raise BuildError(
                    f"super covering not prefix-free: "
                    f"{cellid.to_token(prev)} overlaps {cellid.to_token(curr)}"
                )


def _resolve_conflicts(refs_by_cell: Dict[int, List[PackedRef]],
                       levels_per_step: int,
                       ) -> Tuple[Dict[int, List[PackedRef]], int]:
    """Split ancestor cells around their conflicting descendants.

    Cells are laminar (any two are nested or disjoint), so sorting by
    ``range_min`` with coarser cells first turns containment chains into
    consecutive runs, which are resolved group by group. Conflict-free
    cells — the overwhelmingly common case — pass through untouched.
    """
    order = sorted(
        refs_by_cell,
        key=lambda c: ((c - (c & -c)) << 6) | cellid.level(c),
    )
    out: Dict[int, List[PackedRef]] = {}
    conflict_cells = 0
    i = 0
    n = len(order)
    while i < n:
        cell = order[i]
        group_end = i + 1
        max_range = cellid.range_max(cell)
        while group_end < n and \
                cellid.range_min(order[group_end]) <= max_range:
            next_max = cellid.range_max(order[group_end])
            if next_max > max_range:
                max_range = next_max
            group_end += 1
        if group_end == i + 1:
            out[cell] = refs_by_cell[cell]
        else:
            before = len(out)
            _resolve_group(
                [(c, refs_by_cell[c]) for c in order[i:group_end]],
                out, levels_per_step,
            )
            conflict_cells += len(out) - before - (group_end - i)
        i = group_end
    return out, max(0, conflict_cells)


def _resolve_group(group: Sequence[Tuple[int, List[PackedRef]]],
                   out: Dict[int, List[PackedRef]],
                   levels_per_step: int) -> None:
    """Push ancestor references down through one laminar conflict group."""
    root_cell, root_refs = group[0]
    root = _LaminarNode(root_cell, set(root_refs))
    stack = [root]
    for cell, refs in group[1:]:
        while not cellid.contains(stack[-1].cell, cell):
            stack.pop()
        node = _LaminarNode(cell, set(refs))
        stack[-1].children.append(node)
        stack.append(node)
    _emit(root.cell, frozenset(root.refs), root.children,
          out, levels_per_step)


def _emit(cell: int, refs: FrozenSet[PackedRef],
          children: List[_LaminarNode], out: Dict[int, List[PackedRef]],
          levels_per_step: int) -> None:
    """Tile ``cell`` with its conflicting descendants pushed-down into it.

    ``refs`` are the references inherited from ``cell`` and all of its
    resolved ancestors; they apply to every part of the cell not claimed
    by a descendant.
    """
    if not children:
        if refs:
            _merge_out(out, cell, refs)
        return
    if not refs:
        # nothing to push down: descendants resolve independently
        for child in children:
            _emit(child.cell, frozenset(child.refs), child.children,
                  out, levels_per_step)
        return

    # split the cell one level and distribute (cells may sit at any level
    # since denormalization happens inside the trie insert)
    target_level = cellid.level(cell) + 1
    for slot in cellid.denormalize(cell, target_level):
        slot_min = cellid.range_min(slot)
        slot_max = slot_min + 2 * (slot & -slot) - 2
        sub = [c for c in children
               if slot_min <= cellid.range_min(c.cell) <= slot_max]
        if not sub:
            _merge_out(out, slot, refs)
        elif len(sub) == 1 and sub[0].cell == slot:
            node = sub[0]
            _emit(slot, refs | node.refs, node.children, out,
                  levels_per_step)
        else:
            # the slot itself is not a recorded cell: recurse with the
            # inherited refs (non-empty here) over the surviving nodes
            _emit(slot, refs, sub, out, levels_per_step)


def _merge_out(out: Dict[int, List[PackedRef]], cell: int,
               refs: Iterable[PackedRef]) -> None:
    existing = out.get(cell)
    if existing is None:
        out[cell] = list(refs)
    else:
        existing.extend(refs)
