"""Index introspection and space analysis.

The paper's evaluation reasons about *why* ACT behaves the way it does:
interior cells sit at coarse levels (cache-resident upper nodes), boundary
cells concentrate at the precision level, and fanout-256 nodes are sparsely
occupied. This module computes those distributions from a built index so
the claims can be inspected (and are asserted in tests):

* :func:`level_histogram` — indexed cells per grid level, split into
  true-hit and candidate slots;
* :func:`node_occupancy` — distribution of non-empty slots per node;
* :func:`interior_area_fraction` — fraction of each polygon's area covered
  by its interior cells (the paper's "majority of the interior area");
* :func:`summarize` — one dict with the headline numbers.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..geometry.polygon import Polygon
from ..grid import cellid
from ..grid.base import HierarchicalGrid
from ..grid.coverer import Covering
from . import entry as entry_codec
from .core import ACTCore
from .index import ACTIndex


def level_histogram(core: ACTCore) -> Dict[int, Tuple[int, int]]:
    """``{level: (true_hit_slots, candidate_slots)}`` over indexed cells.

    Levels reflect the post-denormalization placement (the node depth a
    lookup actually touches).
    """
    histogram: Dict[int, Tuple[int, int]] = {}
    for cell, entry in core.iter_cells():
        level = cellid.level(cell)
        true_slots, cand_slots = histogram.get(level, (0, 0))
        tag = entry_codec.tag(entry)
        if tag in (entry_codec.TAG_PAYLOAD_1, entry_codec.TAG_PAYLOAD_2):
            refs = entry_codec.payload_refs(entry)
            if any(entry_codec.ref_is_true_hit(r) for r in refs):
                true_slots += 1
            else:
                cand_slots += 1
        else:
            cand_slots += 1  # offset entries are mixed; count conservatively
        histogram[level] = (true_slots, cand_slots)
    return histogram


def node_occupancy(core: ACTCore) -> Dict[str, float]:
    """Slot-occupancy statistics over all nodes (sparsity of fanout 256)."""
    if core.num_nodes == 0:
        return {"nodes": 0, "mean": 0.0, "median": 0.0, "max": 0}
    fills = np.count_nonzero(core.nodes, axis=1)
    return {
        "nodes": int(core.num_nodes),
        "mean": float(fills.mean()),
        "median": float(np.median(fills)),
        "max": int(fills.max()),
        "occupancy": float(fills.mean()) / core.fanout,
    }


def interior_area_fraction(covering: Covering, polygon: Polygon,
                           grid: HierarchicalGrid) -> float:
    """Fraction of the polygon's area covered by interior (true-hit) cells.

    The paper: ACT "improves the ratio of true hits by covering the
    majority of the interior area of polygons using interior cells".
    """
    if polygon.area <= 0.0:
        return 0.0
    interior_area = sum(
        grid.cell_rect(cell).area for cell in covering.interior
    )
    return min(1.0, interior_area / polygon.area)


def summarize(index: ACTIndex) -> Dict[str, object]:
    """Headline introspection numbers for one index."""
    histogram = level_histogram(index.core)
    occupancy = node_occupancy(index.core)
    total_true = sum(t for t, _ in histogram.values())
    total_cand = sum(c for _, c in histogram.values())
    coarse_true = sum(
        t for level, (t, _) in histogram.items()
        if level <= index.boundary_level - 2
    )
    return {
        "indexed_cells": index.stats.indexed_cells,
        "levels": sorted(histogram),
        "true_hit_slots": total_true,
        "candidate_slots": total_cand,
        "true_slot_fraction": (
            total_true / max(1, total_true + total_cand)
        ),
        "coarse_true_slots": coarse_true,
        "node_occupancy": occupancy,
        "boundary_level": index.boundary_level,
        "bytes_per_indexed_cell": (
            index.core.size_bytes / max(1, index.stats.indexed_cells)
        ),
    }
