"""Public facade: the ACT approximate geospatial join index.

:class:`ACTIndex` bundles the grid, the trie, the lookup table, and the
original polygons behind the interface a downstream user needs:

* :meth:`ACTIndex.build` — index a set of polygons at a precision bound;
* :meth:`query` / :meth:`query_approx` / :meth:`query_exact` — per-point
  lookups returning polygon ids;
* :meth:`lookup_batch` / :meth:`count_points` — vectorized joins and the
  count-per-polygon aggregation the paper's evaluation measures;
* :attr:`stats` / :attr:`guaranteed_precision_meters` — Table I metrics
  and the realized precision guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BuildError
from ..geometry.polygon import Polygon
from ..grid.base import HierarchicalGrid
from ..grid.planar import PlanarGrid
from . import entry as entry_codec
from .builder import ACTBuilder, BuildResult
from .lookup_table import LookupTable
from .stats import IndexStats
from .trie import AdaptiveCellTrie
from .vectorized import VectorizedACT


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one point lookup.

    ``true_hits`` are guaranteed containments; ``candidates`` are within
    the precision bound of the polygon but possibly outside it.
    """

    true_hits: Tuple[int, ...]
    candidates: Tuple[int, ...]

    @property
    def all_ids(self) -> Tuple[int, ...]:
        """Approximate-join semantics: every reference counts as a hit."""
        return self.true_hits + self.candidates

    @property
    def is_hit(self) -> bool:
        return bool(self.true_hits or self.candidates)


class ACTIndex:
    """Approximate point-in-polygon join index with a precision guarantee."""

    def __init__(self, grid: HierarchicalGrid, trie: AdaptiveCellTrie,
                 lookup_table: LookupTable, polygons: Sequence[Polygon],
                 stats: IndexStats, boundary_level: int):
        self.grid = grid
        self.trie = trie
        self.lookup_table = lookup_table
        self.polygons = list(polygons)
        self.stats = stats
        self.boundary_level = boundary_level
        self._vectorized: Optional[VectorizedACT] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, polygons: Sequence[Polygon],
              precision_meters: float = 4.0,
              grid: Optional[HierarchicalGrid] = None,
              fanout: int = 256,
              use_interior: bool = True,
              max_cells_per_polygon: Optional[int] = None) -> "ACTIndex":
        """Build an index guaranteeing ``precision_meters``.

        ``grid`` defaults to a :class:`~repro.grid.planar.PlanarGrid`
        fitted to the polygons (exact cell geometry); pass an
        :class:`~repro.grid.s2like.S2LikeGrid` for the paper's spherical
        setup. See :class:`~repro.act.builder.ACTBuilder` for the
        remaining knobs.
        """
        polygons = list(polygons)
        if not polygons:
            raise BuildError("cannot build an index over zero polygons")
        if grid is None:
            grid = PlanarGrid.for_polygons(polygons)
        builder = ACTBuilder(
            grid, fanout=fanout, use_interior=use_interior,
            max_cells_per_polygon=max_cells_per_polygon,
        )
        result: BuildResult = builder.build(polygons, precision_meters)
        return cls(grid, result.trie, result.lookup_table, polygons,
                   result.stats, result.boundary_level)

    # ------------------------------------------------------------------
    # Guarantees
    # ------------------------------------------------------------------
    @property
    def precision_meters(self) -> float:
        """The precision bound the index was built for."""
        return self.stats.precision_meters

    @property
    def guaranteed_precision_meters(self) -> float:
        """Realized worst-case distance of a false positive, in meters
        (at most :attr:`precision_meters`, usually tighter)."""
        return self.grid.max_diag_meters(self.boundary_level)

    @property
    def num_polygons(self) -> int:
        return len(self.polygons)

    # ------------------------------------------------------------------
    # Scalar queries
    # ------------------------------------------------------------------
    def query(self, lng: float, lat: float) -> QueryResult:
        """Classified lookup: separate true hits from candidates."""
        leaf = self.grid.leaf_cell(lng, lat)
        if leaf is None:
            return QueryResult((), ())
        return self._decode(self.trie.lookup_entry(leaf))

    def query_approx(self, lng: float, lat: float) -> Tuple[int, ...]:
        """Approximate join: all referenced polygon ids, no refinement.

        False positives lie within :attr:`guaranteed_precision_meters`
        of their reported polygon — the paper's headline operation.
        """
        return self.query(lng, lat).all_ids

    def query_exact(self, lng: float, lat: float) -> Tuple[int, ...]:
        """Exact join: candidates are refined with point-in-polygon tests.

        True hits skip refinement entirely (the true-hit-filtering
        speedup); only boundary-cell matches pay for a PIP test.
        """
        result = self.query(lng, lat)
        refined = tuple(
            pid for pid in result.candidates
            if self.polygons[pid].contains(lng, lat)
        )
        return result.true_hits + refined

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------
    @property
    def vectorized(self) -> VectorizedACT:
        """Lazily frozen flat-array snapshot used by the batch paths."""
        if self._vectorized is None:
            self._vectorized = VectorizedACT(self.trie, self.lookup_table)
        return self._vectorized

    def lookup_batch(self, lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Encoded entries for a batch of points (see
        :class:`~repro.act.vectorized.VectorizedACT`)."""
        cells = self.grid.leaf_cells_batch(
            np.asarray(lngs, dtype=np.float64),
            np.asarray(lats, dtype=np.float64),
        )
        return self.vectorized.lookup_entries(cells)

    def query_batch(self, lngs: np.ndarray, lats: np.ndarray,
                    ) -> List[QueryResult]:
        """Per-point classified results for a batch (convenience API)."""
        return [self._decode(int(e)) for e in self.lookup_batch(lngs, lats)]

    def count_points(self, lngs: np.ndarray, lats: np.ndarray,
                     exact: bool = False) -> np.ndarray:
        """Count points per polygon — the paper's evaluation workload.

        With ``exact=False`` this is the pure approximate join (true hits
        plus candidates, zero PIP tests). With ``exact=True`` candidates
        are refined against the actual polygons, giving exact counts while
        still skipping refinement for every true hit.
        """
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        entries = self.lookup_batch(lngs, lats)
        if not exact:
            return self.vectorized.count_hits(entries, self.num_polygons,
                                              include_candidates=True)
        counts = self.vectorized.count_hits(entries, self.num_polygons,
                                            include_candidates=False)
        point_idx, polygon_ids = self.vectorized.candidate_pairs(entries)
        if point_idx.size:
            order = np.argsort(polygon_ids, kind="stable")
            point_idx = point_idx[order]
            polygon_ids = polygon_ids[order]
            boundaries = np.flatnonzero(np.diff(polygon_ids)) + 1
            for chunk_idx, chunk_pts in zip(
                np.split(polygon_ids, boundaries),
                np.split(point_idx, boundaries),
            ):
                pid = int(chunk_idx[0])
                inside = self.polygons[pid].contains_batch(
                    lngs[chunk_pts], lats[chunk_pts]
                )
                counts[pid] += int(np.count_nonzero(inside))
        return counts

    # ------------------------------------------------------------------
    # Entry decoding
    # ------------------------------------------------------------------
    def decode_entry(self, entry: int) -> QueryResult:
        """Decode one encoded trie entry (as produced by
        :meth:`lookup_batch`) into a classified :class:`QueryResult`."""
        tag = entry_codec.tag(entry)
        if tag == entry_codec.TAG_POINTER:
            return QueryResult((), ())
        if tag == entry_codec.TAG_OFFSET:
            true_ids, cand_ids = self.lookup_table.get(
                entry_codec.offset_value(entry)
            )
            return QueryResult(true_ids, cand_ids)
        refs = entry_codec.payload_refs(entry)
        true_hits = tuple(entry_codec.ref_polygon_id(r) for r in refs
                          if entry_codec.ref_is_true_hit(r))
        candidates = tuple(entry_codec.ref_polygon_id(r) for r in refs
                           if not entry_codec.ref_is_true_hit(r))
        return QueryResult(true_hits, candidates)

    #: Backwards-compatible private alias for :meth:`decode_entry`.
    _decode = decode_entry

    def memory_report(self) -> dict:
        """Size breakdown in bytes (C++-layout accounting, like Table I)."""
        return {
            "trie_bytes": self.trie.size_bytes,
            "trie_nodes": self.trie.num_nodes,
            "lookup_table_bytes": self.lookup_table.size_bytes,
            "total_bytes": self.trie.size_bytes + self.lookup_table.size_bytes,
            "indexed_cells": self.stats.indexed_cells,
        }

    def __repr__(self) -> str:
        return (
            f"ACTIndex({self.num_polygons} polygons, "
            f"precision={self.precision_meters:g} m, "
            f"grid={self.grid.name}, fanout={self.trie.fanout}, "
            f"cells={self.stats.indexed_cells:,})"
        )
