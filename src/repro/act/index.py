"""Public facade: the ACT approximate geospatial join index.

:class:`ACTIndex` bundles the grid, the columnar :class:`~repro.act.core.
ACTCore`, and the original polygons behind the interface a downstream
user needs:

* :meth:`ACTIndex.build` — index a set of polygons at a precision bound
  (the object trie used during construction is exported into the core
  and discarded; queries never touch it);
* :meth:`query` / :meth:`query_approx` / :meth:`query_exact` — per-point
  lookups returning polygon ids;
* :meth:`lookup_batch` / :meth:`count_points` — vectorized joins and the
  count-per-polygon aggregation the paper's evaluation measures;
* :attr:`stats` / :attr:`guaranteed_precision_meters` — Table I metrics
  and the realized precision guarantee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BuildError
from ..geometry.polygon import Polygon
from ..grid.base import HierarchicalGrid
from ..grid.planar import PlanarGrid
from .builder import ACTBuilder, BuildResult
from .core import ACTCore, QueryResult
from .lookup_table import LookupTable
from .stats import IndexStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (join sits above)
    from ..join.executor import JoinExecutor

__all__ = ["ACTIndex", "QueryResult"]


class ACTIndex:
    """Approximate point-in-polygon join index with a precision guarantee."""

    def __init__(self, grid: HierarchicalGrid, core: ACTCore,
                 polygons: Sequence[Polygon], stats: IndexStats,
                 boundary_level: int):
        self.grid = grid
        self.core = core
        self.polygons = list(polygons)
        self.stats = stats
        self.boundary_level = boundary_level
        self._executor: Optional["JoinExecutor"] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, polygons: Sequence[Polygon],
              precision_meters: float = 4.0,
              grid: Optional[HierarchicalGrid] = None,
              fanout: int = 256,
              use_interior: bool = True,
              max_cells_per_polygon: Optional[int] = None) -> "ACTIndex":
        """Build an index guaranteeing ``precision_meters``.

        ``grid`` defaults to a :class:`~repro.grid.planar.PlanarGrid`
        fitted to the polygons (exact cell geometry); pass an
        :class:`~repro.grid.s2like.S2LikeGrid` for the paper's spherical
        setup. See :class:`~repro.act.builder.ACTBuilder` for the
        remaining knobs.
        """
        polygons = list(polygons)
        if not polygons:
            raise BuildError("cannot build an index over zero polygons")
        if grid is None:
            grid = PlanarGrid.for_polygons(polygons)
        builder = ACTBuilder(
            grid, fanout=fanout, use_interior=use_interior,
            max_cells_per_polygon=max_cells_per_polygon,
        )
        result: BuildResult = builder.build(polygons, precision_meters)
        # export the build-time trie into the canonical flat arrays and
        # let the object trie go out of scope here
        core = ACTCore.from_trie(result.trie, result.lookup_table)
        return cls(grid, core, polygons, result.stats,
                   result.boundary_level)

    # ------------------------------------------------------------------
    # Guarantees
    # ------------------------------------------------------------------
    @property
    def precision_meters(self) -> float:
        """The precision bound the index was built for."""
        return self.stats.precision_meters

    @property
    def guaranteed_precision_meters(self) -> float:
        """Realized worst-case distance of a false positive, in meters
        (at most :attr:`precision_meters`, usually tighter)."""
        return self.grid.max_diag_meters(self.boundary_level)

    @property
    def num_polygons(self) -> int:
        return len(self.polygons)

    @property
    def lookup_table(self) -> LookupTable:
        return self.core.lookup_table

    @property
    def executor(self) -> "JoinExecutor":
        """The columnar join engine bound to this index (cached)."""
        if self._executor is None:
            from ..join.executor import JoinExecutor
            self._executor = JoinExecutor(self)
        return self._executor

    def prewarm(self, edge_table: bool = True) -> "ACTIndex":
        """Build the lazily-constructed hot-path artifacts now.

        Forces the executor (and, when ``edge_table``, the packed edge
        table behind exact refinement) to exist in the calling process.
        Fork-based workers — :mod:`repro.join.parallel` and the serving
        fleet — call this in the parent before forking so children
        inherit the artifacts built (copy-on-write, page-cache-shared
        for mmap-loaded node pools) instead of rebuilding them
        ``workers`` times.
        """
        executor = self.executor
        if edge_table:
            _ = executor.edge_table
        return self

    # ------------------------------------------------------------------
    # Scalar queries
    # ------------------------------------------------------------------
    def query(self, lng: float, lat: float) -> QueryResult:
        """Classified lookup: separate true hits from candidates."""
        leaf = self.grid.leaf_cell(lng, lat)
        if leaf is None:
            return QueryResult((), ())
        return self.core.decode_entry(self.core.lookup_entry(leaf))

    def query_approx(self, lng: float, lat: float) -> Tuple[int, ...]:
        """Approximate join: all referenced polygon ids, no refinement.

        False positives lie within :attr:`guaranteed_precision_meters`
        of their reported polygon — the paper's headline operation.
        """
        return self.query(lng, lat).all_ids

    def query_exact(self, lng: float, lat: float) -> Tuple[int, ...]:
        """Exact join: candidates are refined with point-in-polygon tests.

        True hits skip refinement entirely (the true-hit-filtering
        speedup); only boundary-cell matches pay for a PIP test.
        """
        result = self.query(lng, lat)
        refined = tuple(
            pid for pid in result.candidates
            if self.polygons[pid].contains(lng, lat)
        )
        return result.true_hits + refined

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------
    def lookup_batch(self, lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Encoded entries for a batch of points (see
        :meth:`~repro.act.core.ACTCore.lookup_entries`)."""
        cells = self.grid.leaf_cells_batch(
            np.asarray(lngs, dtype=np.float64),
            np.asarray(lats, dtype=np.float64),
        )
        return self.core.lookup_entries(cells)

    def query_batch(self, lngs: np.ndarray, lats: np.ndarray,
                    ) -> List[QueryResult]:
        """Per-point classified results for a batch (convenience API)."""
        decode = self.core.decode_entry
        return [decode(int(e)) for e in self.lookup_batch(lngs, lats)]

    def count_points(self, lngs: np.ndarray, lats: np.ndarray,
                     exact: bool = False, trace=None) -> np.ndarray:
        """Count points per polygon — the paper's evaluation workload.

        With ``exact=False`` this is the pure approximate join (true hits
        plus candidates, zero PIP tests). With ``exact=True`` candidates
        are refined against the actual polygons, giving exact counts while
        still skipping refinement for every true hit. Both paths run
        through the columnar :class:`~repro.join.executor.JoinExecutor`,
        which stamps per-stage timings into ``trace`` when given one.
        """
        return self.executor.count_points(lngs, lats, exact=exact,
                                          trace=trace)

    # ------------------------------------------------------------------
    # Entry decoding
    # ------------------------------------------------------------------
    def decode_entry(self, entry: int) -> QueryResult:
        """Decode one encoded entry (as produced by :meth:`lookup_batch`)
        into a classified :class:`QueryResult`."""
        return self.core.decode_entry(entry)

    #: Backwards-compatible private alias for :meth:`decode_entry`.
    _decode = decode_entry

    def memory_report(self) -> dict:
        """Size breakdown in bytes (C++-layout accounting, like Table I)."""
        return {
            "trie_bytes": self.core.size_bytes,
            "trie_nodes": self.core.num_nodes,
            "lookup_table_bytes": self.core.lookup_table.size_bytes,
            "total_bytes": self.core.total_bytes,
            "indexed_cells": self.stats.indexed_cells,
        }

    def __repr__(self) -> str:
        return (
            f"ACTIndex({self.num_polygons} polygons, "
            f"precision={self.precision_meters:g} m, "
            f"grid={self.grid.name}, fanout={self.core.fanout}, "
            f"cells={self.stats.indexed_cells:,})"
        )
