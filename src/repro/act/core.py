"""The columnar ACT core: flat arrays as the canonical representation.

The paper credits ACT's speed to lookups costing "a few basic integer
arithmetics and bitwise operations". :class:`ACTCore` is the form in
which that promise is kept: the trie is a ``(num_nodes, fanout)`` uint64
node pool plus six face-root entries, the lookup table a uint32 array
with a CSR (indptr/ids) decode built once at construction. Every query
path — scalar point lookups, vectorized batch descents, per-polygon hit
counting, candidate-pair extraction — runs against these arrays; there
is exactly one lookup engine.

:class:`~repro.act.trie.AdaptiveCellTrie` still exists, but only as
build-time scaffolding: :meth:`ACTIndex.build <repro.act.index.ACTIndex
.build>` inserts cells into a trie, exports it into an ``ACTCore``, and
discards it. Persistence (:mod:`repro.act.serialize`) round-trips the
core's arrays directly, so cold loads never reconstruct a Python object
trie.

Batch descents are level-synchronous: at each step the still-active
points gather their next entries with one fancy-indexing operation.
Lookup-table (>= 3 reference) entries decode through the CSR arrays with
``searchsorted`` + ranged gathers, so even heavily overlapping polygon
sets stay off the Python interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, Tuple

import numpy as np

from ..errors import BuildError
from ..grid import cellid
from . import entry as entry_codec
from .lookup_table import LookupTable
from .trie import KEY_BITS, SUPPORTED_FANOUTS, AdaptiveCellTrie

_MASK31 = np.uint64((1 << 31) - 1)
_MASK60 = np.uint64((1 << KEY_BITS) - 1)
_KEY_MASK = (1 << KEY_BITS) - 1


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one point lookup.

    ``true_hits`` are guaranteed containments; ``candidates`` are within
    the precision bound of the polygon but possibly outside it.
    """

    true_hits: Tuple[int, ...]
    candidates: Tuple[int, ...]

    @property
    def all_ids(self) -> Tuple[int, ...]:
        """Approximate-join semantics: every reference counts as a hit."""
        return self.true_hits + self.candidates

    @property
    def is_hit(self) -> bool:
        return bool(self.true_hits or self.candidates)


#: Empty result shared by every miss decode.
_MISS = QueryResult((), ())


class ACTCore:
    """Flat-array ACT serving scalar and batch lookups.

    Parameters
    ----------
    nodes:
        ``(num_nodes, fanout)`` uint64 node pool (one zero row stands in
        for an empty trie, matching
        :meth:`~repro.act.trie.AdaptiveCellTrie.export_arrays`).
    roots:
        Per-face root entries (uint64, length = number of faces).
    lookup_table:
        The deduplicated reference sets for >= 3-reference cells.
    fanout:
        Slots per node (must be in
        :data:`~repro.act.trie.SUPPORTED_FANOUTS`).
    num_entries:
        Number of indexed (post-denormalization) slots, for stats.
    """

    __slots__ = (
        "nodes", "roots", "lookup_table", "fanout", "num_entries",
        "bits_per_step", "levels_per_step", "max_steps", "max_cell_level",
        "_chunk_mask", "_roots_list", "_num_nodes", "_offset_cache",
        "_set_starts", "_true_indptr", "_true_ids", "_cand_indptr",
        "_cand_ids", "descent_batches", "descent_points",
        "descent_seconds",
    )

    def __init__(self, nodes: np.ndarray, roots: np.ndarray,
                 lookup_table: LookupTable, fanout: int,
                 num_entries: int = 0):
        if fanout not in SUPPORTED_FANOUTS:
            raise BuildError(
                f"fanout must be one of {SUPPORTED_FANOUTS}, got {fanout}"
            )
        self.nodes = np.ascontiguousarray(nodes, dtype=np.uint64)
        if self.nodes.ndim != 2 or self.nodes.shape[1] != fanout:
            raise BuildError(
                f"node pool shape {self.nodes.shape} does not match "
                f"fanout {fanout}"
            )
        self.roots = np.asarray(roots, dtype=np.uint64)
        self.lookup_table = lookup_table
        self.fanout = fanout
        self.num_entries = num_entries
        self.bits_per_step = fanout.bit_length() - 1  # log2(fanout)
        self.levels_per_step = self.bits_per_step // 2
        self.max_steps = KEY_BITS // self.bits_per_step
        self.max_cell_level = self.max_steps * self.levels_per_step
        self._chunk_mask = np.uint64(fanout - 1)
        # scalar descents index plain ints; keep the roots as a list
        self._roots_list = [int(r) for r in self.roots]
        # an all-zero single row is the canonical empty-pool encoding
        if self.nodes.shape[0] == 1 and not self.nodes.any():
            self._num_nodes = 0
        else:
            self._num_nodes = self.nodes.shape[0]
        self._offset_cache: Dict[int, Tuple[Tuple[int, ...],
                                            Tuple[int, ...]]] = {}
        # per-core descent telemetry: bare counters the serving layer
        # exports per index generation (racy +=, exactness not needed)
        self.descent_batches = 0
        self.descent_points = 0
        self.descent_seconds = 0.0
        self._build_set_index()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trie(cls, trie: AdaptiveCellTrie,
                  lookup_table: LookupTable) -> "ACTCore":
        """Export a built trie into its canonical flat-array form."""
        nodes, roots = trie.export_arrays()
        return cls(nodes, roots, lookup_table, trie.fanout,
                   num_entries=trie.num_entries)

    def _build_set_index(self) -> None:
        """CSR decode of the lookup table, built once.

        ``_set_starts`` holds the (ascending) word offset of every
        reference set; row ``k`` of the CSR arrays holds that set's true
        hit / candidate polygon ids. Entries map offset -> row with one
        ``searchsorted``.
        """
        starts = []
        true_indptr = [0]
        cand_indptr = [0]
        true_ids: list = []
        cand_ids: list = []
        for offset, t_ids, c_ids in self.lookup_table.iter_sets():
            starts.append(offset)
            true_ids.extend(t_ids)
            cand_ids.extend(c_ids)
            true_indptr.append(len(true_ids))
            cand_indptr.append(len(cand_ids))
        self._set_starts = np.asarray(starts, dtype=np.int64)
        self._true_indptr = np.asarray(true_indptr, dtype=np.int64)
        self._true_ids = np.asarray(true_ids, dtype=np.int64)
        self._cand_indptr = np.asarray(cand_indptr, dtype=np.int64)
        self._cand_ids = np.asarray(cand_ids, dtype=np.int64)

    # ------------------------------------------------------------------
    # Structure metrics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def size_bytes(self) -> int:
        """Memory of the C++ layout: 8-byte slots in fixed-size nodes."""
        return self._num_nodes * self.fanout * 8

    @property
    def total_bytes(self) -> int:
        """Node pool plus lookup table."""
        return self.size_bytes + self.lookup_table.size_bytes

    # ------------------------------------------------------------------
    # Scalar lookups
    # ------------------------------------------------------------------
    def lookup_entry(self, leaf_cell: int) -> int:
        """Encoded entry matching the leaf's path, or 0 (miss).

        The descent is comparison-free: each step extracts the next path
        chunk and indexes into the node pool.
        """
        entry = self._roots_list[leaf_cell >> cellid.POS_BITS]
        if entry & 0b11:
            return entry
        if entry == entry_codec.SENTINEL:
            return entry_codec.SENTINEL
        path = (leaf_cell >> 1) & _KEY_MASK
        bits = self.bits_per_step
        mask = self.fanout - 1
        nodes = self.nodes
        shift = KEY_BITS
        for _ in range(self.max_steps):
            shift -= bits
            entry = int(nodes[(entry >> 2) - 1, (path >> shift) & mask])
            if entry & 0b11:
                return entry
            if entry == entry_codec.SENTINEL:
                return entry_codec.SENTINEL
        return entry_codec.SENTINEL

    def node_accesses(self, leaf_cell: int) -> int:
        """Number of node reads a lookup of ``leaf_cell`` performs
        (for reproducing the paper's cost model c_avg)."""
        entry = self._roots_list[leaf_cell >> cellid.POS_BITS]
        if entry & 0b11 or entry == entry_codec.SENTINEL:
            return 0
        path = (leaf_cell >> 1) & _KEY_MASK
        bits = self.bits_per_step
        mask = self.fanout - 1
        nodes = self.nodes
        accesses = 0
        shift = KEY_BITS
        for _ in range(self.max_steps):
            shift -= bits
            accesses += 1
            entry = int(nodes[(entry >> 2) - 1, (path >> shift) & mask])
            if entry & 0b11 or entry == entry_codec.SENTINEL:
                return accesses
        return accesses

    def decode_entry(self, entry: int) -> QueryResult:
        """Decode one encoded entry into a classified :class:`QueryResult`."""
        tag = entry & 0b11
        if tag == entry_codec.TAG_POINTER:
            return _MISS
        if tag == entry_codec.TAG_OFFSET:
            true_ids, cand_ids = self._decode_offset(entry >> 2)
            return QueryResult(true_ids, cand_ids)
        refs = entry_codec.payload_refs(entry)
        true_hits = tuple(entry_codec.ref_polygon_id(r) for r in refs
                          if entry_codec.ref_is_true_hit(r))
        candidates = tuple(entry_codec.ref_polygon_id(r) for r in refs
                           if not entry_codec.ref_is_true_hit(r))
        return QueryResult(true_hits, candidates)

    # ------------------------------------------------------------------
    # Batch descent
    # ------------------------------------------------------------------
    def lookup_entries(self, leaf_cells: np.ndarray,
                       sort_by_cell: bool = False) -> np.ndarray:
        """Encoded entry per leaf cell id (0 = miss / invalid cell).

        ``sort_by_cell=True`` permutes the batch into ascending cell-id
        order before descending (face bits are the most significant, so
        points sharing a face — and then a subtree — gather from
        adjacent node-pool rows, the cache behaviour the paper credits)
        and unpermutes the entries on output. Results are identical
        either way; the flag only changes the access pattern.
        """
        start = perf_counter()
        if sort_by_cell and leaf_cells.shape[0] > 1:
            cells = leaf_cells.astype(np.uint64, copy=False)
            order = np.argsort(cells, kind="stable")
            entries = self._descend(cells[order])
            out = np.empty_like(entries)
            out[order] = entries
        else:
            out = self._descend(leaf_cells)
        self.descent_batches += 1
        self.descent_points += int(leaf_cells.shape[0])
        self.descent_seconds += perf_counter() - start
        return out

    def _descend(self, leaf_cells: np.ndarray) -> np.ndarray:
        """The level-synchronous batch walk over the node pool."""
        cells = leaf_cells.astype(np.uint64, copy=False)
        valid = cells != 0
        faces = (cells >> np.uint64(cellid.POS_BITS)).astype(np.int64)
        faces[~valid] = 0
        entries = self.roots[faces]
        entries[~valid] = 0
        paths = (cells >> np.uint64(1)) & _MASK60

        active = valid & ((entries & np.uint64(3)) == 0) & (entries != 0)
        shift = KEY_BITS
        table = self.nodes
        for _ in range(self.max_steps):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            shift -= self.bits_per_step
            node_idx = ((entries[idx] >> np.uint64(2))
                        - np.uint64(1)).astype(np.int64)
            chunk = ((paths[idx] >> np.uint64(shift))
                     & self._chunk_mask).astype(np.int64)
            found = table[node_idx, chunk]
            entries[idx] = found
            active[idx] = ((found & np.uint64(3)) == 0) & (found != 0)
        # anything still pointing at a node after max_steps is a miss
        entries[active] = 0
        return entries

    # ------------------------------------------------------------------
    # Batch decoding
    # ------------------------------------------------------------------
    def hit_counts(self, entries: np.ndarray, num_polygons: int,
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """``(true_counts, candidate_counts)`` per polygon in one pass.

        One decode of the batch serves both the approximate join (sum of
        the two) and true-hit-only accounting, instead of two passes.
        """
        true_counts = np.zeros(num_polygons, dtype=np.int64)
        cand_counts = np.zeros(num_polygons, dtype=np.int64)
        tags = entries & np.uint64(3)

        refs_parts = []
        one = entries[tags == np.uint64(entry_codec.TAG_PAYLOAD_1)]
        if one.size:
            refs_parts.append((one >> np.uint64(2)) & _MASK31)
        two = entries[tags == np.uint64(entry_codec.TAG_PAYLOAD_2)]
        if two.size:
            refs_parts.append((two >> np.uint64(2)) & _MASK31)
            refs_parts.append((two >> np.uint64(33)) & _MASK31)
        if refs_parts:
            refs = np.concatenate(refs_parts)
            ids = (refs >> np.uint64(1)).astype(np.int64)
            is_true = (refs & np.uint64(1)) == np.uint64(1)
            true_counts += np.bincount(ids[is_true], minlength=num_polygons)
            cand_counts += np.bincount(ids[~is_true], minlength=num_polygons)

        offsets = entries[tags == np.uint64(entry_codec.TAG_OFFSET)]
        if offsets.size:
            rows = np.searchsorted(
                self._set_starts,
                (offsets >> np.uint64(2)).astype(np.int64),
            )
            ids = _csr_gather(rows, self._true_indptr, self._true_ids)
            if ids.size:
                true_counts += np.bincount(ids, minlength=num_polygons)
            ids = _csr_gather(rows, self._cand_indptr, self._cand_ids)
            if ids.size:
                cand_counts += np.bincount(ids, minlength=num_polygons)
        return true_counts, cand_counts

    def count_hits(self, entries: np.ndarray, num_polygons: int,
                   include_candidates: bool = True) -> np.ndarray:
        """Per-polygon hit counts over a batch of looked-up entries.

        ``include_candidates=True`` implements the paper's *approximate*
        join (candidate cells count as hits, with the precision bound);
        ``False`` counts only guaranteed true hits.
        """
        true_counts, cand_counts = self.hit_counts(entries, num_polygons)
        if include_candidates:
            return true_counts + cand_counts
        return true_counts

    def pairs(self, entries: np.ndarray, want_true: bool,
              ) -> Tuple[np.ndarray, np.ndarray]:
        """``(point_indices, polygon_ids)`` of references with the given
        interior flag (``want_true=True`` -> true hits, else candidates)."""
        flag = np.uint64(1 if want_true else 0)
        point_idx_parts = []
        polygon_id_parts = []
        tags = entries & np.uint64(3)

        mask1 = tags == np.uint64(entry_codec.TAG_PAYLOAD_1)
        if mask1.any():
            refs = (entries[mask1] >> np.uint64(2)) & _MASK31
            keep = (refs & np.uint64(1)) == flag
            point_idx_parts.append(np.flatnonzero(mask1)[keep])
            polygon_id_parts.append(
                (refs[keep] >> np.uint64(1)).astype(np.int64))

        mask2 = tags == np.uint64(entry_codec.TAG_PAYLOAD_2)
        if mask2.any():
            base = np.flatnonzero(mask2)
            for shift in (2, 33):
                refs = (entries[mask2] >> np.uint64(shift)) & _MASK31
                keep = (refs & np.uint64(1)) == flag
                point_idx_parts.append(base[keep])
                polygon_id_parts.append(
                    (refs[keep] >> np.uint64(1)).astype(np.int64))

        mask3 = tags == np.uint64(entry_codec.TAG_OFFSET)
        if mask3.any():
            base = np.flatnonzero(mask3)
            rows = np.searchsorted(
                self._set_starts,
                ((entries[mask3] >> np.uint64(2))).astype(np.int64),
            )
            indptr = self._true_indptr if want_true else self._cand_indptr
            ids = self._true_ids if want_true else self._cand_ids
            lengths = indptr[rows + 1] - indptr[rows]
            gathered = _csr_gather(rows, indptr, ids)
            if gathered.size:
                point_idx_parts.append(np.repeat(base, lengths))
                polygon_id_parts.append(gathered)

        if not point_idx_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return (np.concatenate(point_idx_parts),
                np.concatenate(polygon_id_parts))

    def candidate_pairs(self, entries: np.ndarray,
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """``(point_indices, polygon_ids)`` of all *candidate* references.

        These are the pairs an exact join must refine with PIP tests; true
        hits need no refinement by construction.
        """
        return self.pairs(entries, want_true=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        """Yield every indexed ``(cell, entry)`` pair (tests/analysis)."""
        for face, root in enumerate(self._roots_list):
            if root == entry_codec.SENTINEL:
                continue
            if root & 0b11:
                yield cellid.from_face(face), root
                continue
            stack = [((root >> 2) - 1, face, 0, 0)]
            while stack:
                node_idx, face_val, path, level = stack.pop()
                row = self.nodes[node_idx].tolist()
                for chunk, entry in enumerate(row):
                    if entry == entry_codec.SENTINEL:
                        continue
                    child_path = (path << self.bits_per_step) | chunk
                    child_level = level + self.levels_per_step
                    if entry & 0b11:
                        yield (cellid.from_face_path(
                            face_val, child_path, child_level), entry)
                    else:
                        stack.append(((entry >> 2) - 1, face_val,
                                      child_path, child_level))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decode_offset(self, offset: int,
                       ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        cached = self._offset_cache.get(offset)
        if cached is None:
            cached = self.lookup_table.get(offset)
            self._offset_cache[offset] = cached
        return cached

    def __repr__(self) -> str:
        return (
            f"ACTCore({self._num_nodes} nodes, fanout={self.fanout}, "
            f"{self.num_entries:,} entries, "
            f"{self.size_bytes / 1e6:.2f} MB)"
        )


def _csr_gather(rows: np.ndarray, indptr: np.ndarray,
                ids: np.ndarray) -> np.ndarray:
    """Concatenated ``ids[indptr[r]:indptr[r+1]]`` for every row in order."""
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(lengths)
    take = (np.arange(total, dtype=np.int64)
            - np.repeat(cum - lengths, lengths)
            + np.repeat(starts, lengths))
    return ids[take]
