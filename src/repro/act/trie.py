"""The Adaptive Cell Trie: a radix tree over hierarchical grid cells.

Keys are the Hilbert-path bit sequences of cell ids (the 3 face bits are
dispatched through per-face root slots, so path chunks stay aligned). With
the default fanout of 256, each trie level consumes 8 key bits ≙ 4 grid
levels, capping lookups at ``floor(60 / 8) = 7`` node accesses after the
face dispatch — the "few basic integer operations" the paper credits for
its speed.

Lookups are **comparison-free** in the radix-tree sense: no key is ever
compared against stored keys; each step extracts the next chunk of the
query cell's path and jumps to that slot. Only the 2-bit entry tags are
inspected to distinguish pointers from inlined payloads, exactly as the
paper describes.

Cells may only be inserted at levels aligned to the fanout granularity
(``level % levels_per_step == 0``); the builder denormalizes coverings
accordingly (paper: "we need to denormalize cells upon insertion and
replicate their payloads").

This class is **build-time scaffolding**: it exists so insertion (node
allocation, denormalization, conflict detection) has a convenient
pointer structure to mutate. Once a build finishes, the trie is exported
(:meth:`AdaptiveCellTrie.export_arrays`) into the canonical columnar
:class:`~repro.act.core.ACTCore` and discarded; no query path descends
Python node objects.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..errors import BuildError
from ..grid import cellid
from . import entry as entry_codec

#: Fanouts supported: 4 ** k keeps chunks aligned to whole grid levels.
SUPPORTED_FANOUTS = (4, 16, 64, 256)

#: Total path bits of a leaf cell (level 30, 2 bits per level).
KEY_BITS = 2 * cellid.MAX_LEVEL


class AdaptiveCellTrie:
    """Radix tree mapping grid cells to encoded polygon-reference entries.

    Parameters
    ----------
    fanout:
        Slots per node; must be a power of four so that each trie level
        consumes an integral number of grid levels. The paper's default
        (and ours) is 256.
    num_faces:
        Number of root slots (6 for spherical grids, 1 suffices for
        planar grids but 6 is kept for a uniform layout).
    """

    __slots__ = ("fanout", "bits_per_step", "levels_per_step", "max_steps",
                 "max_cell_level", "_roots", "_nodes", "num_entries")

    def __init__(self, fanout: int = 256, num_faces: int = cellid.NUM_FACES):
        if fanout not in SUPPORTED_FANOUTS:
            raise BuildError(
                f"fanout must be one of {SUPPORTED_FANOUTS}, got {fanout}"
            )
        self.fanout = fanout
        self.bits_per_step = fanout.bit_length() - 1  # log2(fanout)
        self.levels_per_step = self.bits_per_step // 2
        self.max_steps = KEY_BITS // self.bits_per_step
        #: deepest level at which cells can be indexed (28 for fanout 256)
        self.max_cell_level = self.max_steps * self.levels_per_step
        self._roots: List[int] = [entry_codec.SENTINEL] * num_faces
        self._nodes: List[List[int]] = []
        self.num_entries = 0

    @classmethod
    def from_arrays(cls, nodes, roots, fanout: int,
                    num_entries: int) -> "AdaptiveCellTrie":
        """Rebuild a trie from :meth:`export_arrays` output (persistence)."""
        trie = cls(fanout=fanout, num_faces=len(roots))
        trie._roots = [int(r) for r in roots]
        pool = [[int(v) for v in row] for row in nodes]
        # export_arrays emits one zero row for an empty trie; drop it
        if num_entries == 0 and len(pool) == 1 and not any(pool[0]):
            pool = []
        trie._nodes = pool
        trie.num_entries = num_entries
        return trie

    # ------------------------------------------------------------------
    # Structure metrics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def size_bytes(self) -> int:
        """Memory of the C++ layout: 8-byte slots in fixed-size nodes."""
        return self.num_nodes * self.fanout * 8

    def align_level_up(self, level: int) -> int:
        """Smallest indexable level >= ``level`` (granularity rounding)."""
        step = self.levels_per_step
        aligned = ((level + step - 1) // step) * step
        if aligned > self.max_cell_level:
            raise BuildError(
                f"level {level} not indexable with fanout {self.fanout} "
                f"(deepest indexable level is {self.max_cell_level})"
            )
        return aligned

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, cell: int, entry: int) -> None:
        """Insert an encoded entry for a conflict-free cell at any level.

        Cells whose level is not a multiple of the granularity are
        **denormalized on insertion** (paper, Section II): the entry is
        replicated across the contiguous slot range its descendant cells
        occupy at the next indexable level. Descendants within one
        granularity step always share a single node, so denormalization is
        a slice fill, never extra nodes.

        Raises :class:`~repro.errors.BuildError` on over-deep levels,
        duplicate cells, or ancestor/descendant conflicts — the super
        covering is responsible for producing a prefix-free cell set.
        """
        level = cellid.level(cell)
        if level > self.max_cell_level:
            raise BuildError(
                f"cell level {level} exceeds the deepest indexable level "
                f"{self.max_cell_level} of a fanout-{self.fanout} trie"
            )
        if entry_codec.tag(entry) == entry_codec.TAG_POINTER:
            raise BuildError("cannot insert a pointer entry")
        face = cellid.face(cell)
        path, key_bits = cellid.path_key(cell)
        bits = self.bits_per_step
        steps = key_bits // bits
        remainder_bits = key_bits - steps * bits

        if steps == 0 and remainder_bits == 0:
            if self._roots[face] != entry_codec.SENTINEL:
                raise BuildError(f"conflicting insert at face root {face}")
            self._roots[face] = entry
            self.num_entries += 1
            return

        # descend/create internal nodes chunk by chunk (inlined hot loop);
        # after the loop, (container, index) addresses the slot reached by
        # consuming every *full* chunk of the key
        mask = self.fanout - 1
        nodes = self._nodes
        container: List[int] = self._roots
        index = face
        for step in range(steps):
            slot = container[index]
            if slot == entry_codec.SENTINEL:
                node = [entry_codec.SENTINEL] * self.fanout
                nodes.append(node)
                container[index] = (len(nodes) << 2)  # make_pointer inlined
            elif slot & 0b11:
                raise BuildError(
                    "conflicting insert: an ancestor cell already carries a "
                    "payload on this path (super covering not prefix-free)"
                )
            else:
                node = nodes[(slot >> 2) - 1]
            container = node
            index = (path >> (key_bits - (step + 1) * bits)) & mask

        if remainder_bits == 0:
            # exactly aligned: a single terminal slot
            if container[index] != entry_codec.SENTINEL:
                raise BuildError(
                    f"conflicting insert: slot for cell "
                    f"{cellid.to_token(cell)} already holds an entry"
                )
            container[index] = entry
            self.num_entries += 1
            return

        # unaligned: resolve one more node — the partial-chunk slots of
        # this cell's descendants all live there
        slot = container[index]
        if slot == entry_codec.SENTINEL:
            node = [entry_codec.SENTINEL] * self.fanout
            nodes.append(node)
            container[index] = (len(nodes) << 2)
        elif slot & 0b11:
            raise BuildError(
                "conflicting insert: an ancestor cell already carries a "
                "payload on this path (super covering not prefix-free)"
            )
        else:
            node = nodes[(slot >> 2) - 1]
        # denormalize: fill the contiguous descendant slot range
        free_bits = bits - remainder_bits
        base = (path & ((1 << remainder_bits) - 1)) << free_bits
        span = 1 << free_bits
        segment = node[base:base + span]
        if any(s != entry_codec.SENTINEL for s in segment):
            raise BuildError(
                f"conflicting insert: denormalized range of cell "
                f"{cellid.to_token(cell)} overlaps existing entries"
            )
        node[base:base + span] = [entry] * span
        self.num_entries += span

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup_entry(self, leaf_cell: int) -> int:
        """Encoded entry matching the leaf's path, or the sentinel (miss).

        The descent is comparison-free: each step extracts the next path
        chunk and indexes into the current node.
        """
        face = leaf_cell >> cellid.POS_BITS
        entry = self._roots[face]
        if entry_codec.tag(entry) != entry_codec.TAG_POINTER:
            return entry
        if entry == entry_codec.SENTINEL:
            return entry_codec.SENTINEL
        path = (leaf_cell >> 1) & ((1 << KEY_BITS) - 1)
        bits = self.bits_per_step
        mask = self.fanout - 1
        nodes = self._nodes
        shift = KEY_BITS
        for _ in range(self.max_steps):
            shift -= bits
            node = nodes[(entry >> 2) - 1]
            entry = node[(path >> shift) & mask]
            t = entry & 0b11
            if t != entry_codec.TAG_POINTER:
                return entry
            if entry == entry_codec.SENTINEL:
                return entry_codec.SENTINEL
        return entry_codec.SENTINEL

    def node_accesses(self, leaf_cell: int) -> int:
        """Number of node reads the lookup of ``leaf_cell`` performs
        (for reproducing the paper's cost model c_avg)."""
        face = leaf_cell >> cellid.POS_BITS
        entry = self._roots[face]
        if entry_codec.tag(entry) != entry_codec.TAG_POINTER or \
                entry == entry_codec.SENTINEL:
            return 0
        path = (leaf_cell >> 1) & ((1 << KEY_BITS) - 1)
        bits = self.bits_per_step
        mask = self.fanout - 1
        accesses = 0
        shift = KEY_BITS
        for _ in range(self.max_steps):
            shift -= bits
            node = self._nodes[(entry >> 2) - 1]
            accesses += 1
            entry = node[(path >> shift) & mask]
            if (entry & 0b11) != entry_codec.TAG_POINTER or \
                    entry == entry_codec.SENTINEL:
                return accesses
        return accesses

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        """Yield every indexed ``(cell, entry)`` pair (tests/serialization)."""
        for face, root in enumerate(self._roots):
            if root == entry_codec.SENTINEL:
                continue
            if entry_codec.tag(root) != entry_codec.TAG_POINTER:
                yield cellid.from_face(face), root
                continue
            stack = [(entry_codec.pointer_index(root), face, 0, 0)]
            while stack:
                node_idx, face_val, path, level = stack.pop()
                node = self._nodes[node_idx]
                for chunk in range(self.fanout):
                    entry = node[chunk]
                    if entry == entry_codec.SENTINEL:
                        continue
                    child_path = (path << self.bits_per_step) | chunk
                    child_level = level + self.levels_per_step
                    if entry_codec.tag(entry) == entry_codec.TAG_POINTER:
                        stack.append((entry_codec.pointer_index(entry),
                                      face_val, child_path, child_level))
                    else:
                        yield (cellid.from_face_path(
                            face_val, child_path, child_level), entry)

    def export_arrays(self):
        """Node pool as a ``(num_nodes, fanout)`` uint64 array plus the
        root entries — the input to :class:`repro.act.core.ACTCore`."""
        import numpy as np

        table = np.zeros((max(1, len(self._nodes)), self.fanout),
                         dtype=np.uint64)
        for idx, node in enumerate(self._nodes):
            table[idx, :] = node
        roots = np.asarray(self._roots, dtype=np.uint64)
        return table, roots
