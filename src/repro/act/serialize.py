"""Index persistence: save/load a built ACT index.

The paper targets *static* polygon sets, so building once and shipping
the index to query nodes is the natural deployment. The on-disk format
is a single compressed ``.npz``:

* the node pool (``(num_nodes, fanout)`` uint64) and face roots;
* the lookup-table uint32 array;
* grid parameters (kind, bounds, max level);
* the original polygons (GeoJSON, needed for exact-mode refinement);
* build stats (JSON) so Table-I metrics survive the roundtrip.

The stored arrays *are* the canonical :class:`~repro.act.core.ACTCore`
representation, so :func:`load_index` materializes the core directly
from the ``.npz`` buffers — no :class:`~repro.act.trie.AdaptiveCellTrie`
is ever reconstructed, which keeps cold loads (e.g. the serve registry
pinning an index on first request) at array-copy speed. Loading returns
an :class:`~repro.act.index.ACTIndex` that answers identically to the
original (tests assert bit-equal lookups).

The archive is written member by member so the node pool — the one
array that dominates index size — is a *stored* (uncompressed) zip
member while the small members stay deflated. A stored member is raw
``.npy`` bytes at a known file offset, which is what makes
``load_index(path, mmap_mode="r")`` possible: the node pool becomes an
``np.memmap`` over the archive itself, so huge indexes cold-start
lazily (pages fault in on first touch) and forked worker processes
share the pool through the page cache instead of each holding a copy.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import ACTError
from ..geometry import geojson
from ..geometry.bbox import Rect
from ..grid.planar import PlanarGrid
from ..grid.s2like import S2LikeGrid
from .core import ACTCore
from .index import ACTIndex
from .lookup_table import LookupTable
from .stats import IndexStats

#: On-disk format version (bump on layout changes).
FORMAT_VERSION = 1


def save_index(index: ACTIndex, path: Union[str, Path]) -> None:
    """Persist ``index`` to ``path`` (``.npz``; extension not enforced)."""
    core = index.core
    polygons_doc = geojson.feature_collection(
        geojson.feature(p, {"id": pid})
        for pid, p in enumerate(index.polygons)
    )
    grid = index.grid
    if isinstance(grid, PlanarGrid):
        grid_kind = "planar"
        grid_params = [grid.bounds.min_x, grid.bounds.min_y,
                       grid.bounds.max_x, grid.bounds.max_y,
                       float(grid.max_level)]
    elif isinstance(grid, S2LikeGrid):
        grid_kind = "s2like"
        grid_params = [float(grid.max_level)]
    else:
        raise ACTError(
            f"cannot serialize indexes over grid type "
            f"{type(grid).__name__!r}"
        )
    meta = {
        "version": FORMAT_VERSION,
        "fanout": core.fanout,
        "num_trie_entries": core.num_entries,
        "boundary_level": index.boundary_level,
        "grid_kind": grid_kind,
        "stats": _stats_to_dict(index.stats),
    }
    members = {
        "nodes": core.nodes,
        "roots": core.roots,
        "lookup": core.lookup_table.as_array(),
        "grid_params": np.asarray(grid_params, dtype=np.float64),
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"),
                              dtype=np.uint8),
        "polygons": np.frombuffer(
            json.dumps(polygons_doc).encode("utf-8"), dtype=np.uint8
        ),
    }
    # hand-rolled npz: the node pool is a STORED member so load_index
    # can memory-map it in place; everything else stays deflated
    with zipfile.ZipFile(path, "w", allowZip64=True) as archive:
        for name, array in members.items():
            info = zipfile.ZipInfo(f"{name}.npy",
                                   date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = (zipfile.ZIP_STORED if name == "nodes"
                                  else zipfile.ZIP_DEFLATED)
            with archive.open(info, "w") as fp:
                np.lib.format.write_array(
                    fp, np.ascontiguousarray(array), allow_pickle=False)


def save_index_atomic(index: ACTIndex, path: Union[str, Path]) -> Path:
    """Persist ``index`` to ``path`` via write-temp + rename.

    The archive is written to a hidden sibling temp file and moved into
    place with :func:`os.replace`, so a reader never observes a partial
    archive and — crucially for zero-downtime reloads — a process that
    memory-mapped the *old* file at ``path`` keeps a valid map: the
    rename unlinks the old directory entry but the old inode survives
    until the last map goes away.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        save_index(index, tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def generation_path(path: Union[str, Path], generation: int) -> Path:
    """The generation-suffixed sibling of an index path.

    ``idx.npz`` at generation 7 becomes ``idx.gen000007.npz``; reload
    coordinators write each new generation to its own file so workers
    still serving (and mmap-ing) an older generation are untouched.
    """
    path = Path(path)
    suffix = path.suffix or ".npz"
    stem = path.name[:-len(suffix)] if path.name.endswith(suffix) \
        else path.name
    return path.with_name(f"{stem}.gen{generation:06d}{suffix}")


def load_index(path: Union[str, Path],
               mmap_mode: Optional[str] = None) -> ACTIndex:
    """Load an index written by :func:`save_index`.

    The node pool and roots feed :class:`~repro.act.core.ACTCore`
    directly; nothing rebuilds a Python object trie.

    ``mmap_mode`` (``"r"`` read-only or ``"c"`` copy-on-write) maps the
    node pool straight from the archive instead of reading it: the
    returned core's ``nodes`` array is backed by the file, pages in
    lazily on first access, and is shared (not duplicated) across
    processes forked after the load.
    """
    if mmap_mode not in (None, "r", "c"):
        raise ACTError(
            f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r}"
        )
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ACTError(
                f"unsupported index format version {meta.get('version')!r}"
            )
        # NpzFile reads members lazily, so skipping data["nodes"] in
        # mmap mode means the pool's bytes are never even read here
        nodes = (_mmap_npz_member(path, "nodes.npy", mmap_mode)
                 if mmap_mode else data["nodes"])
        roots = data["roots"]
        lookup_array = data["lookup"]
        grid_params = data["grid_params"]
        polygons_doc = json.loads(
            bytes(data["polygons"].tobytes()).decode("utf-8")
        )

    if meta["grid_kind"] == "planar":
        bounds = Rect(*grid_params[:4])
        grid = PlanarGrid(bounds, max_level=int(grid_params[4]))
    elif meta["grid_kind"] == "s2like":
        grid = S2LikeGrid(max_level=int(grid_params[0]))
    else:
        raise ACTError(f"unknown grid kind {meta['grid_kind']!r}")

    core = ACTCore(
        nodes, roots, LookupTable.from_array(lookup_array),
        fanout=meta["fanout"], num_entries=meta["num_trie_entries"],
    )
    polygons = []
    for feat in polygons_doc["features"]:
        geom = geojson.geometry_from_geojson(feat["geometry"])
        polygons.append(geom)
    stats = _stats_from_dict(meta["stats"])
    return ACTIndex(grid, core, polygons, stats, meta["boundary_level"])


def _mmap_npz_member(path: Union[str, Path], member: str,
                     mmap_mode: str) -> np.ndarray:
    """Memory-map one *stored* ``.npy`` member of an ``.npz`` archive.

    A stored zip member is the raw ``.npy`` stream at
    ``local header offset + header size``, so after parsing the npy
    header the array data can be mapped directly from the archive file
    — zero copies, lazy paging.
    """
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member)
        except KeyError:
            raise ACTError(f"archive {path} has no member {member!r}")
    if info.compress_type != zipfile.ZIP_STORED:
        raise ACTError(
            f"member {member!r} is compressed and cannot be memory-"
            f"mapped; re-save the index with this version to enable "
            f"mmap_mode"
        )
    with open(path, "rb") as fp:
        # the central directory's header_offset points at the local
        # file header; its name/extra lengths give the data offset
        fp.seek(info.header_offset)
        local = fp.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise ACTError(f"corrupt local file header for {member!r}")
        name_len, extra_len = struct.unpack("<HH", local[26:30])
        fp.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(fp)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fp)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fp)
        else:
            raise ACTError(
                f"unsupported npy format version {version} in {member!r}"
            )
        data_offset = fp.tell()
    return np.memmap(path, dtype=dtype, mode=mmap_mode, offset=data_offset,
                     shape=shape, order="F" if fortran else "C")


def _stats_to_dict(stats: IndexStats) -> dict:
    out = {k: getattr(stats, k) for k in (
        "num_polygons", "precision_meters", "boundary_level", "fanout",
        "grid_name", "raw_boundary_cells", "raw_interior_cells",
        "indexed_cells", "conflict_cells", "trie_nodes", "trie_bytes",
        "trie_entries", "lookup_table_bytes", "lookup_table_sets",
        "build_coverings_seconds", "build_super_seconds",
        "build_trie_seconds",
    )}
    return out


def _stats_from_dict(data: dict) -> IndexStats:
    stats = IndexStats()
    for key, value in data.items():
        setattr(stats, key, value)
    return stats
