"""Index persistence: save/load a built ACT index.

The paper targets *static* polygon sets, so building once and shipping
the index to query nodes is the natural deployment. The on-disk format
is a single compressed ``.npz``:

* the node pool (``(num_nodes, fanout)`` uint64) and face roots;
* the lookup-table uint32 array;
* grid parameters (kind, bounds, max level);
* the original polygons (GeoJSON, needed for exact-mode refinement);
* build stats (JSON) so Table-I metrics survive the roundtrip.

The stored arrays *are* the canonical :class:`~repro.act.core.ACTCore`
representation, so :func:`load_index` materializes the core directly
from the ``.npz`` buffers — no :class:`~repro.act.trie.AdaptiveCellTrie`
is ever reconstructed, which keeps cold loads (e.g. the serve registry
pinning an index on first request) at array-copy speed. Loading returns
an :class:`~repro.act.index.ACTIndex` that answers identically to the
original (tests assert bit-equal lookups).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ACTError
from ..geometry import geojson
from ..geometry.bbox import Rect
from ..grid.planar import PlanarGrid
from ..grid.s2like import S2LikeGrid
from .core import ACTCore
from .index import ACTIndex
from .lookup_table import LookupTable
from .stats import IndexStats

#: On-disk format version (bump on layout changes).
FORMAT_VERSION = 1


def save_index(index: ACTIndex, path: Union[str, Path]) -> None:
    """Persist ``index`` to ``path`` (``.npz``; extension not enforced)."""
    core = index.core
    polygons_doc = geojson.feature_collection(
        geojson.feature(p, {"id": pid})
        for pid, p in enumerate(index.polygons)
    )
    grid = index.grid
    if isinstance(grid, PlanarGrid):
        grid_kind = "planar"
        grid_params = [grid.bounds.min_x, grid.bounds.min_y,
                       grid.bounds.max_x, grid.bounds.max_y,
                       float(grid.max_level)]
    elif isinstance(grid, S2LikeGrid):
        grid_kind = "s2like"
        grid_params = [float(grid.max_level)]
    else:
        raise ACTError(
            f"cannot serialize indexes over grid type "
            f"{type(grid).__name__!r}"
        )
    meta = {
        "version": FORMAT_VERSION,
        "fanout": core.fanout,
        "num_trie_entries": core.num_entries,
        "boundary_level": index.boundary_level,
        "grid_kind": grid_kind,
        "stats": _stats_to_dict(index.stats),
    }
    np.savez_compressed(
        path,
        nodes=core.nodes,
        roots=core.roots,
        lookup=core.lookup_table.as_array(),
        grid_params=np.asarray(grid_params, dtype=np.float64),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        polygons=np.frombuffer(
            json.dumps(polygons_doc).encode("utf-8"), dtype=np.uint8
        ),
    )


def load_index(path: Union[str, Path]) -> ACTIndex:
    """Load an index written by :func:`save_index`.

    The node pool and roots feed :class:`~repro.act.core.ACTCore`
    directly; nothing rebuilds a Python object trie.
    """
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ACTError(
                f"unsupported index format version {meta.get('version')!r}"
            )
        nodes = data["nodes"]
        roots = data["roots"]
        lookup_array = data["lookup"]
        grid_params = data["grid_params"]
        polygons_doc = json.loads(
            bytes(data["polygons"].tobytes()).decode("utf-8")
        )

    if meta["grid_kind"] == "planar":
        bounds = Rect(*grid_params[:4])
        grid = PlanarGrid(bounds, max_level=int(grid_params[4]))
    elif meta["grid_kind"] == "s2like":
        grid = S2LikeGrid(max_level=int(grid_params[0]))
    else:
        raise ACTError(f"unknown grid kind {meta['grid_kind']!r}")

    core = ACTCore(
        nodes, roots, LookupTable.from_array(lookup_array),
        fanout=meta["fanout"], num_entries=meta["num_trie_entries"],
    )
    polygons = []
    for feat in polygons_doc["features"]:
        geom = geojson.geometry_from_geojson(feat["geometry"])
        polygons.append(geom)
    stats = _stats_from_dict(meta["stats"])
    return ACTIndex(grid, core, polygons, stats, meta["boundary_level"])


def _stats_to_dict(stats: IndexStats) -> dict:
    out = {k: getattr(stats, k) for k in (
        "num_polygons", "precision_meters", "boundary_level", "fanout",
        "grid_name", "raw_boundary_cells", "raw_interior_cells",
        "indexed_cells", "conflict_cells", "trie_nodes", "trie_bytes",
        "trie_entries", "lookup_table_bytes", "lookup_table_sets",
        "build_coverings_seconds", "build_super_seconds",
        "build_trie_seconds",
    )}
    return out


def _stats_from_dict(data: dict) -> IndexStats:
    stats = IndexStats()
    for key, value in data.items():
        setattr(stats, key, value)
    return stats
