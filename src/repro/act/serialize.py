"""Index persistence: save/load a built ACT index.

The paper targets *static* polygon sets, so building once and shipping
the index to query nodes is the natural deployment. The on-disk format
is a single compressed ``.npz``:

* the node pool (``(num_nodes, fanout)`` uint64) and face roots;
* the lookup-table uint32 array;
* grid parameters (kind, bounds, max level);
* the original polygons (GeoJSON, needed for exact-mode refinement);
* build stats (JSON) so Table-I metrics survive the roundtrip.

The stored arrays *are* the canonical :class:`~repro.act.core.ACTCore`
representation, so :func:`load_index` materializes the core directly
from the ``.npz`` buffers — no :class:`~repro.act.trie.AdaptiveCellTrie`
is ever reconstructed, which keeps cold loads (e.g. the serve registry
pinning an index on first request) at array-copy speed. Loading returns
an :class:`~repro.act.index.ACTIndex` that answers identically to the
original (tests assert bit-equal lookups).

The archive is written member by member so the node pool — the one
array that dominates index size — is a *stored* (uncompressed) zip
member while the small members stay deflated. A stored member is raw
``.npy`` bytes at a known file offset, which is what makes
``load_index(path, mmap_mode="r")`` possible: the node pool becomes an
``np.memmap`` over the archive itself, so huge indexes cold-start
lazily (pages fault in on first touch) and forked worker processes
share the pool through the page cache instead of each holding a copy.

**Integrity.** Every archive carries a ``manifest`` member written
last: per-member CRC32 over the raw array bytes plus the dtype/shape/
byte-count each member must decode to. :func:`load_index` verifies on
open — the default ``verify="header"`` checks every *small* member's
checksum and the node pool's declared geometry (so an mmap cold load
stays lazy: the pool's pages are never faulted in just to hash them),
while ``verify="full"`` also hashes the node pool (chunked, so even a
memory-mapped pool is streamed rather than copied). Any mismatch — and
any structurally unreadable archive — raises
:class:`~repro.errors.ArtifactCorruptError`, which the serving
lifecycle treats as a NACK (quarantine + rollback). Archives written
before the manifest existed still load under ``verify="header"``;
``verify="full"`` refuses them.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
import zlib
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from ..errors import ACTError, ArtifactCorruptError, ReproError
from ..geometry import geojson
from ..geometry.bbox import Rect
from ..grid.planar import PlanarGrid
from ..grid.s2like import S2LikeGrid
from .core import ACTCore
from .index import ACTIndex
from .lookup_table import LookupTable
from .stats import IndexStats

#: On-disk format version (bump on layout changes).
FORMAT_VERSION = 1

#: Checksum algorithm recorded in the manifest (stdlib CRC32; the
#: manifest names it so a future xxhash/CRC32C upgrade can coexist).
CHECKSUM_ALGO = "crc32"

#: Valid ``verify=`` modes for :func:`load_index`.
_VERIFY_MODES = ("off", "header", "full")


def _crc32_array(array: np.ndarray) -> int:
    """CRC32 over an array's raw data bytes, streamed in chunks.

    Chunking matters for memory-mapped pools: the bytes are hashed
    16 MiB at a time straight off the buffer (pages fault in and can be
    reclaimed), never copied wholesale with ``tobytes()``.
    """
    view = memoryview(np.ascontiguousarray(array)).cast("B")
    crc = 0
    step = 1 << 24
    for start in range(0, len(view), step):
        crc = zlib.crc32(view[start:start + step], crc)
    return crc & 0xFFFFFFFF


def save_index(index: ACTIndex, path: Union[str, Path]) -> None:
    """Persist ``index`` to ``path`` (``.npz``; extension not enforced)."""
    core = index.core
    polygons_doc = geojson.feature_collection(
        geojson.feature(p, {"id": pid})
        for pid, p in enumerate(index.polygons)
    )
    grid = index.grid
    if isinstance(grid, PlanarGrid):
        grid_kind = "planar"
        grid_params = [grid.bounds.min_x, grid.bounds.min_y,
                       grid.bounds.max_x, grid.bounds.max_y,
                       float(grid.max_level)]
    elif isinstance(grid, S2LikeGrid):
        grid_kind = "s2like"
        grid_params = [float(grid.max_level)]
    else:
        raise ACTError(
            f"cannot serialize indexes over grid type "
            f"{type(grid).__name__!r}"
        )
    meta = {
        "version": FORMAT_VERSION,
        "fanout": core.fanout,
        "num_trie_entries": core.num_entries,
        "boundary_level": index.boundary_level,
        "grid_kind": grid_kind,
        "stats": _stats_to_dict(index.stats),
    }
    members = {
        "nodes": core.nodes,
        "roots": core.roots,
        "lookup": core.lookup_table.as_array(),
        "grid_params": np.asarray(grid_params, dtype=np.float64),
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"),
                              dtype=np.uint8),
        "polygons": np.frombuffer(
            json.dumps(polygons_doc).encode("utf-8"), dtype=np.uint8
        ),
    }
    # hand-rolled npz: the node pool is a STORED member so load_index
    # can memory-map it in place; everything else stays deflated
    manifest: dict = {"format": FORMAT_VERSION, "algo": CHECKSUM_ALGO,
                      "members": {}}
    with zipfile.ZipFile(path, "w", allowZip64=True) as archive:
        for name, array in members.items():
            array = np.ascontiguousarray(array)
            manifest["members"][name] = {
                "crc32": _crc32_array(array),
                "bytes": int(array.nbytes),
                "dtype": str(array.dtype),
                "shape": list(array.shape),
            }
            info = zipfile.ZipInfo(f"{name}.npy",
                                   date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = (zipfile.ZIP_STORED if name == "nodes"
                                  else zipfile.ZIP_DEFLATED)
            with archive.open(info, "w") as fp:
                np.lib.format.write_array(fp, array, allow_pickle=False)
        # the manifest goes last so it covers every data member; a
        # truncated write can therefore never produce an archive whose
        # manifest vouches for members that were not fully written
        info = zipfile.ZipInfo("manifest.npy",
                               date_time=(1980, 1, 1, 0, 0, 0))
        info.compress_type = zipfile.ZIP_DEFLATED
        with archive.open(info, "w") as fp:
            np.lib.format.write_array(
                fp,
                np.frombuffer(json.dumps(manifest).encode("utf-8"),
                              dtype=np.uint8),
                allow_pickle=False)


def save_index_atomic(index: ACTIndex, path: Union[str, Path]) -> Path:
    """Persist ``index`` to ``path`` via write-temp + rename.

    The archive is written to a hidden sibling temp file and moved into
    place with :func:`os.replace`, so a reader never observes a partial
    archive and — crucially for zero-downtime reloads — a process that
    memory-mapped the *old* file at ``path`` keeps a valid map: the
    rename unlinks the old directory entry but the old inode survives
    until the last map goes away.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        save_index(index, tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def generation_path(path: Union[str, Path], generation: int) -> Path:
    """The generation-suffixed sibling of an index path.

    ``idx.npz`` at generation 7 becomes ``idx.gen000007.npz``; reload
    coordinators write each new generation to its own file so workers
    still serving (and mmap-ing) an older generation are untouched.
    """
    path = Path(path)
    suffix = path.suffix or ".npz"
    stem = path.name[:-len(suffix)] if path.name.endswith(suffix) \
        else path.name
    return path.with_name(f"{stem}.gen{generation:06d}{suffix}")


def _npy_payload(raw: bytes) -> bytes:
    """The data bytes of a v1/v2 ``.npy`` stream, without a numpy
    array round-trip — the manifest is a tiny uint8 member, and going
    through ``NpzFile.__getitem__`` for it costs as much as loading a
    whole extra data member on every verified open."""
    if raw[:6] != b"\x93NUMPY":
        raise ValueError("not an npy stream")
    if raw[6] == 1:
        offset = 10 + int.from_bytes(raw[8:10], "little")
    else:
        offset = 12 + int.from_bytes(raw[8:12], "little")
    if offset >= len(raw):
        raise ValueError("npy stream truncated before its data")
    return raw[offset:]


def _read_manifest(data: Any, path: Union[str, Path]) -> Optional[dict]:
    """The parsed integrity manifest, or ``None`` for pre-manifest
    archives (written before this format carried one)."""
    if "manifest" not in getattr(data, "files", ()):
        return None
    try:
        archive = getattr(data, "zip", None)
        if archive is not None:
            payload = _npy_payload(archive.read("manifest.npy"))
        else:  # NpzFile without an open zip handle (never numpy's own)
            payload = bytes(data["manifest"].tobytes())
        manifest = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError, KeyError, OSError,
            zipfile.BadZipFile) as exc:
        raise ArtifactCorruptError(
            f"{path}: integrity manifest is unreadable: {exc}"
        ) from exc
    if not isinstance(manifest, dict) \
            or not isinstance(manifest.get("members"), dict):
        raise ArtifactCorruptError(
            f"{path}: integrity manifest has no member table")
    return manifest


def _check_member(path: Union[str, Path], members: dict, name: str,
                  array: np.ndarray, data: bool = True) -> None:
    """One member against its manifest entry; ``data=False`` checks only
    the decoded geometry (dtype/shape/bytes), never touching the data —
    that is what keeps the mmap cold-load path lazy."""
    entry = members.get(name)
    if not isinstance(entry, dict):
        raise ArtifactCorruptError(
            f"{path}: member {name!r} is missing from the integrity "
            f"manifest")
    array = np.asarray(array)
    try:  # np.dtype() lookup beats str(array.dtype) (a slow property)
        dtype_ok = np.dtype(entry.get("dtype")) == array.dtype
    except TypeError:
        dtype_ok = False
    if (int(entry.get("bytes", -1)) != int(array.nbytes)
            or not dtype_ok
            or list(entry.get("shape", ())) != list(array.shape)):
        raise ArtifactCorruptError(
            f"{path}: member {name!r} does not match its manifest "
            f"entry: manifest says {entry.get('dtype')}"
            f"{list(entry.get('shape', ()))} ({entry.get('bytes')} B), "
            f"archive decodes to {array.dtype}{list(array.shape)} "
            f"({array.nbytes} B)")
    if data:
        crc = _crc32_array(array)
        want = int(entry.get("crc32", -1))
        if crc != want:
            raise ArtifactCorruptError(
                f"{path}: member {name!r} checksum mismatch "
                f"(crc32 {crc:#010x}, manifest {want:#010x})")


#: Exceptions that mean "the archive itself is unreadable" — wrapped
#: into :class:`ArtifactCorruptError` by :func:`load_index` so callers
#: get one typed error for every flavor of on-disk corruption.
_CORRUPTION_ERRORS = (zipfile.BadZipFile, zlib.error, ValueError,
                      EOFError, KeyError, IndexError, struct.error,
                      UnicodeDecodeError)


def load_index(path: Union[str, Path],
               mmap_mode: Optional[str] = None,
               verify: str = "header") -> ACTIndex:
    """Load an index written by :func:`save_index`.

    The node pool and roots feed :class:`~repro.act.core.ACTCore`
    directly; nothing rebuilds a Python object trie.

    ``mmap_mode`` (``"r"`` read-only or ``"c"`` copy-on-write) maps the
    node pool straight from the archive instead of reading it: the
    returned core's ``nodes`` array is backed by the file, pages in
    lazily on first access, and is shared (not duplicated) across
    processes forked after the load.

    ``verify`` controls integrity checking against the embedded
    manifest: ``"header"`` (default) checksums every small member and
    validates the node pool's declared geometry without touching its
    data (mmap loads stay lazy; eagerly read pools are still covered by
    the zip layer's own CRC); ``"full"`` additionally hashes the node
    pool bytes; ``"off"`` skips the manifest entirely. Failures — and
    structurally unreadable archives under any mode — raise
    :class:`~repro.errors.ArtifactCorruptError`.
    """
    if mmap_mode not in (None, "r", "c"):
        raise ACTError(
            f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r}"
        )
    if verify not in _VERIFY_MODES:
        raise ACTError(
            f"verify must be one of {_VERIFY_MODES}, got {verify!r}"
        )
    try:
        with np.load(path) as data:
            meta_bytes = bytes(data["meta"].tobytes())
            meta = json.loads(meta_bytes.decode("utf-8"))
            if meta.get("version") != FORMAT_VERSION:
                raise ACTError(
                    f"unsupported index format version "
                    f"{meta.get('version')!r}"
                )
            manifest = None
            if verify != "off":
                manifest = _read_manifest(data, path)
                if manifest is None and verify == "full":
                    raise ArtifactCorruptError(
                        f"{path}: archive carries no integrity manifest "
                        f"(pre-manifest format); re-save to enable "
                        f"verify='full'")
            # NpzFile reads members lazily, so skipping data["nodes"] in
            # mmap mode means the pool's bytes are never even read here
            nodes = (_mmap_npz_member(path, "nodes.npy", mmap_mode)
                     if mmap_mode else data["nodes"])
            roots = data["roots"]
            lookup_array = data["lookup"]
            grid_params = data["grid_params"]
            polygons_bytes = bytes(data["polygons"].tobytes())
            polygons_doc = json.loads(polygons_bytes.decode("utf-8"))
            if manifest is not None:
                members = manifest["members"]
                _check_member(path, members, "meta",
                              np.frombuffer(meta_bytes, dtype=np.uint8))
                _check_member(path, members, "polygons",
                              np.frombuffer(polygons_bytes,
                                            dtype=np.uint8))
                _check_member(path, members, "roots", roots)
                _check_member(path, members, "lookup", lookup_array)
                _check_member(path, members, "grid_params", grid_params)
                _check_member(path, members, "nodes", nodes,
                              data=(verify == "full"))
    except ReproError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise ArtifactCorruptError(
            f"index artifact {path} is corrupt or truncated: "
            f"{type(exc).__name__}: {exc}"
        ) from exc

    grid: Union[PlanarGrid, S2LikeGrid]
    if meta["grid_kind"] == "planar":
        bounds = Rect(*grid_params[:4])
        grid = PlanarGrid(bounds, max_level=int(grid_params[4]))
    elif meta["grid_kind"] == "s2like":
        grid = S2LikeGrid(max_level=int(grid_params[0]))
    else:
        raise ACTError(f"unknown grid kind {meta['grid_kind']!r}")

    core = ACTCore(
        nodes, roots, LookupTable.from_array(lookup_array),
        fanout=meta["fanout"], num_entries=meta["num_trie_entries"],
    )
    polygons = []
    for feat in polygons_doc["features"]:
        geom = geojson.geometry_from_geojson(feat["geometry"])
        polygons.append(geom)
    stats = _stats_from_dict(meta["stats"])
    return ACTIndex(grid, core, polygons, stats, meta["boundary_level"])


def _mmap_npz_member(path: Union[str, Path], member: str,
                     mmap_mode: str) -> np.ndarray:
    """Memory-map one *stored* ``.npy`` member of an ``.npz`` archive.

    A stored zip member is the raw ``.npy`` stream at
    ``local header offset + header size``, so after parsing the npy
    header the array data can be mapped directly from the archive file
    — zero copies, lazy paging.
    """
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member)
        except KeyError:
            raise ArtifactCorruptError(
                f"archive {path} has no member {member!r}") from None
    if info.compress_type != zipfile.ZIP_STORED:
        raise ACTError(
            f"member {member!r} is compressed and cannot be memory-"
            f"mapped; re-save the index with this version to enable "
            f"mmap_mode"
        )
    with open(path, "rb") as fp:
        # the central directory's header_offset points at the local
        # file header; its name/extra lengths give the data offset
        fp.seek(info.header_offset)
        local = fp.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise ArtifactCorruptError(
                f"{path}: corrupt local file header for {member!r}")
        name_len, extra_len = struct.unpack("<HH", local[26:30])
        fp.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(fp)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fp)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fp)
        else:
            raise ArtifactCorruptError(
                f"unsupported npy format version {version} in {member!r}"
            )
        data_offset = fp.tell()
        end = data_offset + int(
            np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
        fp.seek(0, os.SEEK_END)
        if fp.tell() < end:
            raise ArtifactCorruptError(
                f"{path}: member {member!r} is truncated (needs bytes "
                f"up to offset {end}, file ends at {fp.tell()})")
    return np.memmap(path, dtype=dtype,
                     mode=mmap_mode,  # type: ignore[arg-type]
                     offset=data_offset, shape=shape,
                     order="F" if fortran else "C")


def verify_artifact(path: Union[str, Path], full: bool = False) -> dict:
    """Standalone integrity check of a serialized index.

    ``full=False`` mirrors ``load_index(verify="header")`` — every small
    member is checksummed, the node pool only has its declared geometry
    validated; ``full=True`` hashes the pool too. Returns the parsed
    manifest on success; raises
    :class:`~repro.errors.ArtifactCorruptError` on any mismatch, on a
    structurally unreadable archive, or when the archive predates the
    manifest format.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            manifest = _read_manifest(data, path)
            if manifest is None:
                raise ArtifactCorruptError(
                    f"{path}: archive carries no integrity manifest "
                    f"(pre-manifest format); re-save to enable "
                    f"verification")
            members = manifest["members"]
            for name in members:
                if name == "nodes" and not full:
                    array = _mmap_npz_member(path, "nodes.npy", "r")
                    _check_member(path, members, name, array, data=False)
                else:
                    _check_member(path, members, name, data[name])
    except ReproError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise ArtifactCorruptError(
            f"index artifact {path} is corrupt or truncated: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    return manifest


def quarantine_artifact(path: Union[str, Path]) -> Path:
    """Move a failed artifact into a sibling ``<name>.quarantine/`` dir.

    The reload coordinator calls this after an artifact flunks
    verification so the bad file can never be re-served (a retried
    reload materializes a fresh one) while staying on disk for
    forensics. The rename keeps the inode alive, so workers that
    already memory-mapped the file before it went bad-on-disk are
    untouched. Returns the quarantined location.
    """
    path = Path(path)
    qdir = path.with_name(path.name + ".quarantine")
    qdir.mkdir(exist_ok=True)
    target = qdir / path.name
    n = 1
    while target.exists():
        target = qdir / f"{path.name}.{n}"
        n += 1
    os.replace(path, target)
    return target


def _stats_to_dict(stats: IndexStats) -> dict:
    out = {k: getattr(stats, k) for k in (
        "num_polygons", "precision_meters", "boundary_level", "fanout",
        "grid_name", "raw_boundary_cells", "raw_interior_cells",
        "indexed_cells", "conflict_cells", "trie_nodes", "trie_bytes",
        "trie_entries", "lookup_table_bytes", "lookup_table_sets",
        "build_coverings_seconds", "build_super_seconds",
        "build_trie_seconds",
    )}
    return out


def _stats_from_dict(data: dict) -> IndexStats:
    stats = IndexStats()
    for key, value in data.items():
        setattr(stats, key, value)
    return stats
