"""Index statistics: the metrics of the paper's Table I.

Collected during the build and exposed on :class:`~repro.act.index.ACTIndex`.
``as_table_row`` prints the same columns as the paper (indexed cells, ACT
size, lookup-table size, covering/super-covering build times) so the
benchmark harness can render a directly comparable table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IndexStats:
    """Build-time and size metrics of one ACT index."""

    num_polygons: int = 0
    precision_meters: float = 0.0
    boundary_level: int = 0
    fanout: int = 256
    grid_name: str = ""

    #: covering cells straight out of the per-polygon coverer
    raw_boundary_cells: int = 0
    raw_interior_cells: int = 0

    #: cells actually indexed (after denormalization + conflict push-down)
    indexed_cells: int = 0
    #: extra cells materialized by overlap conflict resolution
    conflict_cells: int = 0

    trie_nodes: int = 0
    trie_bytes: int = 0
    trie_entries: int = 0
    lookup_table_bytes: int = 0
    lookup_table_sets: int = 0

    build_coverings_seconds: float = 0.0
    build_super_seconds: float = 0.0
    build_trie_seconds: float = 0.0

    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def raw_cells(self) -> int:
        return self.raw_boundary_cells + self.raw_interior_cells

    @property
    def total_bytes(self) -> int:
        return self.trie_bytes + self.lookup_table_bytes

    @property
    def build_seconds(self) -> float:
        return (self.build_coverings_seconds + self.build_super_seconds
                + self.build_trie_seconds)

    def as_table_row(self) -> Dict[str, float]:
        """The paper's Table I columns for this index."""
        return {
            "precision [m]": self.precision_meters,
            "indexed cells [M]": self.indexed_cells / 1e6,
            "ACT [MB]": self.trie_bytes / 1e6,
            "lookup table [MB]": self.lookup_table_bytes / 1e6,
            "build individual coverings [s]": self.build_coverings_seconds,
            "build super covering [s]": self.build_super_seconds,
        }

    def __str__(self) -> str:
        return (
            f"IndexStats(polygons={self.num_polygons}, "
            f"precision={self.precision_meters:g} m, "
            f"level={self.boundary_level}, "
            f"cells={self.indexed_cells:,}, "
            f"trie={self.trie_bytes / 1e6:.2f} MB, "
            f"lookup={self.lookup_table_bytes / 1e6:.3f} MB, "
            f"build={self.build_seconds:.2f} s)"
        )
