"""The lookup table for cells referencing three or more polygons.

Mirrors the paper's encoding: a single ``uint32`` array where each entry
is ``[num_true_hits, true_hit_ids..., num_candidates, candidate_ids...]``
and trie slots store offsets into the array. Reference sets recur across
cells (e.g. every cell along a shared border of the same three polygons),
so identical sets are deduplicated and share one offset.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CapacityError
from . import entry as entry_codec


class LookupTable:
    """Deduplicated, uint32-encoded polygon reference sets."""

    __slots__ = ("_data", "_offsets")

    def __init__(self) -> None:
        self._data: List[int] = []
        self._offsets: Optional[
            Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], int]] = {}

    @classmethod
    def from_array(cls, data: np.ndarray) -> "LookupTable":
        """Rebuild a table from its encoded uint32 array (persistence).

        The dedup map is *not* rebuilt here — loaded indexes are almost
        always read-only, so cold loads skip the walk; the first
        ``intern`` call reconstructs it lazily and deduplicates against
        everything already encoded.
        """
        table = cls()
        table._data = data.tolist()
        table._offsets = None  # lazily rebuilt by _ensure_offsets
        return table

    def _ensure_offsets(self) -> Dict:
        offsets = self._offsets
        if offsets is None:
            offsets = {
                (tuple(sorted(true_ids)), tuple(sorted(cand_ids))): offset
                for offset, true_ids, cand_ids in self.iter_sets()
            }
            self._offsets = offsets
        return offsets

    def iter_sets(self) -> Iterator[
            Tuple[int, Tuple[int, ...], Tuple[int, ...]]]:
        """Yield ``(offset, true_ids, candidate_ids)`` for every encoded
        set, in storage order — the one walk of the encoding shared by
        the dedup map and the core's CSR decode."""
        offset = 0
        n = len(self._data)
        while offset < n:
            true_ids, cand_ids = self.get(offset)
            yield offset, true_ids, cand_ids
            offset += 2 + len(true_ids) + len(cand_ids)

    def __len__(self) -> int:
        """Number of uint32 words in the encoded array."""
        return len(self._data)

    @property
    def num_unique_sets(self) -> int:
        return len(self._ensure_offsets())

    @property
    def size_bytes(self) -> int:
        return 4 * len(self._data)

    def intern(self, true_ids: Iterable[int], candidate_ids: Iterable[int]) -> int:
        """Offset of the (deduplicated) reference set, appending if new."""
        offsets = self._ensure_offsets()
        true_key = tuple(sorted(true_ids))
        cand_key = tuple(sorted(candidate_ids))
        key = (true_key, cand_key)
        offset = offsets.get(key)
        if offset is not None:
            return offset
        offset = len(self._data)
        if offset > entry_codec.MAX_OFFSET:
            raise CapacityError(
                f"lookup table exceeded the 31-bit offset space at {offset}"
            )
        self._data.append(len(true_key))
        self._data.extend(true_key)
        self._data.append(len(cand_key))
        self._data.extend(cand_key)
        offsets[key] = offset
        return offset

    def intern_refs(self, refs: Sequence[int]) -> int:
        """Offset for packed 31-bit references (splits true/candidate)."""
        true_ids = [entry_codec.ref_polygon_id(r) for r in refs
                    if entry_codec.ref_is_true_hit(r)]
        cand_ids = [entry_codec.ref_polygon_id(r) for r in refs
                    if not entry_codec.ref_is_true_hit(r)]
        return self.intern(true_ids, cand_ids)

    def get(self, offset: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Decode ``(true_hit_ids, candidate_ids)`` at ``offset``."""
        data = self._data
        if not 0 <= offset < len(data):
            raise CapacityError(f"lookup-table offset {offset} out of range")
        n_true = data[offset]
        true_ids = tuple(data[offset + 1:offset + 1 + n_true])
        cand_pos = offset + 1 + n_true
        n_cand = data[cand_pos]
        cand_ids = tuple(data[cand_pos + 1:cand_pos + 1 + n_cand])
        return true_ids, cand_ids

    def as_array(self) -> np.ndarray:
        """The encoded table as a ``uint32`` numpy array."""
        return np.asarray(self._data, dtype=np.uint32)
