"""ACT index construction: polygons -> coverings -> super covering -> trie.

The build pipeline follows the paper's Section II end to end:

1. compute a covering + interior covering per polygon, with boundary
   cells refined to the grid level whose diagonal is below the requested
   precision (parallelizable per polygon, like the paper's build);
2. merge them into a prefix-free super covering (dedup + conflict
   push-down + denormalization to the trie granularity);
3. encode reference sets (inline one or two, lookup table for three or
   more) and insert them into the Adaptive Cell Trie.

Each phase is timed separately because Table I of the paper reports the
covering and super-covering build times as separate rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import BuildError
from ..geometry.polygon import Polygon
from ..grid.base import HierarchicalGrid
from ..grid.coverer import Covering, RegionCoverer
from . import entry as entry_codec
from .lookup_table import LookupTable
from .stats import IndexStats
from .supercovering import SuperCovering
from .trie import AdaptiveCellTrie


@dataclass
class BuildResult:
    """Everything the facade needs from a finished build."""

    trie: AdaptiveCellTrie
    lookup_table: LookupTable
    stats: IndexStats
    boundary_level: int
    coverings: List[Covering]
    super_covering: SuperCovering


class ACTBuilder:
    """Builds ACT indexes over a hierarchical grid.

    Parameters
    ----------
    grid:
        The hierarchical grid to approximate polygons on.
    fanout:
        Trie fanout (paper default 256 = 8 key bits per node).
    use_interior:
        When ``False``, interior cells are indexed as *candidate* hits
        instead of true hits — the ablation knob that quantifies the value
        of true-hit filtering.
    max_cells_per_polygon:
        Optional covering budget per polygon. When set, boundary cells may
        stay coarser than the precision level and the index no longer
        avoids refinement (the paper's strict-memory mode); pair it with
        exact queries.
    """

    def __init__(self, grid: HierarchicalGrid, fanout: int = 256,
                 use_interior: bool = True,
                 max_cells_per_polygon: Optional[int] = None):
        self.grid = grid
        self.fanout = fanout
        self.use_interior = use_interior
        self.max_cells_per_polygon = max_cells_per_polygon
        self._coverer = RegionCoverer(grid)

    def boundary_level_for(self, precision_meters: float,
                           trie: Optional[AdaptiveCellTrie] = None) -> int:
        """Grid level for the precision bound.

        Boundary cells are refined to this level; the trie denormalizes
        unaligned cells internally on insertion, so no granularity
        rounding is needed here. Raises when the precision requires a
        level deeper than the trie can index.
        """
        reference = trie or AdaptiveCellTrie(self.fanout)
        level = self.grid.level_for_precision(precision_meters)
        if level > reference.max_cell_level:
            raise BuildError(
                f"precision {precision_meters} m needs grid level {level}, "
                f"deeper than a fanout-{self.fanout} trie can index "
                f"({reference.max_cell_level})"
            )
        return level

    def build(self, polygons: Sequence[Polygon],
              precision_meters: float) -> BuildResult:
        """Run the full pipeline for ``polygons`` at ``precision_meters``."""
        if not polygons:
            raise BuildError("cannot build an index over zero polygons")
        if len(polygons) > entry_codec.MAX_POLYGON_ID + 1:
            raise BuildError(
                f"{len(polygons)} polygons exceed the 30-bit id space"
            )
        trie = AdaptiveCellTrie(self.fanout)
        boundary_level = self.boundary_level_for(precision_meters, trie)

        start = time.perf_counter()
        coverings = [self._cover(polygon, boundary_level)
                     for polygon in polygons]
        coverings_seconds = time.perf_counter() - start

        start = time.perf_counter()
        super_covering = SuperCovering.merge(
            ((pid, cov) for pid, cov in enumerate(coverings)),
            trie.levels_per_step,
            trie.max_cell_level,
        )
        super_seconds = time.perf_counter() - start

        start = time.perf_counter()
        lookup_table = LookupTable()
        self._insert_cells(trie, lookup_table, super_covering.cells)
        trie_seconds = time.perf_counter() - start

        stats = IndexStats(
            num_polygons=len(polygons),
            precision_meters=precision_meters,
            boundary_level=boundary_level,
            fanout=self.fanout,
            grid_name=self.grid.name,
            raw_boundary_cells=sum(len(c.boundary) for c in coverings),
            raw_interior_cells=sum(len(c.interior) for c in coverings),
            # post-denormalization count (trie slots), matching the
            # paper's "indexed cells"; the pre-denormalization covering
            # cell count is stats.raw_cells / super_covering.num_cells
            indexed_cells=trie.num_entries,
            conflict_cells=super_covering.num_conflict_cells,
            trie_nodes=trie.num_nodes,
            trie_bytes=trie.size_bytes,
            trie_entries=trie.num_entries,
            lookup_table_bytes=lookup_table.size_bytes,
            lookup_table_sets=lookup_table.num_unique_sets,
            build_coverings_seconds=coverings_seconds,
            build_super_seconds=super_seconds,
            build_trie_seconds=trie_seconds,
        )
        return BuildResult(trie, lookup_table, stats, boundary_level,
                           coverings, super_covering)

    # ------------------------------------------------------------------
    # Pipeline pieces
    # ------------------------------------------------------------------
    def _cover(self, polygon: Polygon, boundary_level: int) -> Covering:
        if self.max_cells_per_polygon is not None:
            return self._coverer.cover_budgeted(
                polygon, self.max_cells_per_polygon, boundary_level
            )
        return self._coverer.cover(polygon, boundary_level)

    def _insert_cells(self, trie: AdaptiveCellTrie, lookup_table: LookupTable,
                      cells: Dict[int, List[int]]) -> None:
        """Encode packed reference lists and insert them into the trie.

        Reference lists come from the super covering as packed 31-bit ints
        (``polygon_id << 1 | is_true``). A polygon appearing with both
        flags collapses to its true-hit reference (the stronger claim);
        with ``use_interior=False`` every reference is demoted to a
        candidate (the no-true-hit-filtering ablation).
        """
        use_interior = self.use_interior
        insert = trie.insert
        for cell, packed in cells.items():
            if len(packed) == 1:
                ref = packed[0] if use_interior else packed[0] & ~1
                insert(cell, entry_codec.make_payload_1(ref))
                continue
            unique = set(packed)
            if not use_interior:
                unique = {ref & ~1 for ref in unique}
            else:
                # true hit dominates a duplicate candidate reference
                unique -= {ref & ~1 for ref in unique if ref & 1}
            refs = sorted(unique)
            if len(refs) == 1:
                insert(cell, entry_codec.make_payload_1(refs[0]))
            elif len(refs) == 2:
                insert(cell, entry_codec.make_payload_2(refs[0], refs[1]))
            else:
                insert(cell, entry_codec.make_offset(
                    lookup_table.intern_refs(refs)))
