"""Memory-budgeted adaptive ACT (the paper's future-work Section I).

When ACT cannot guarantee the desired precision within a memory budget,
the paper proposes to *"adaptively alter the trie structure based on the
distribution of query points to provide higher precision where it is
actually needed"*: refinement is steered toward boundary cells that hot
query regions actually hit, so true hits increase and refinements fall
without exceeding the budget.

:class:`AdaptiveACTIndex` implements that loop:

1. build budgeted per-polygon coverings (coarse boundary cells);
2. serve exact queries by refining candidate matches with PIP tests;
3. :meth:`adapt` — feed a sample of the query distribution; boundary
   cells are charged per candidate hit, the hottest are split into child
   cells re-classified against their polygons, and the trie is rebuilt,
   while the total cell count stays under the budget.

Repeated ``adapt`` rounds migrate precision toward the workload. The
index keeps exact semantics throughout; what improves is the fraction of
lookups that bypass refinement.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ACTError
from ..geometry.polygon import Polygon
from ..geometry.relate import EdgeClassifier, Relation
from ..grid import cellid
from ..grid.base import HierarchicalGrid
from ..grid.coverer import RegionCoverer
from ..grid.planar import PlanarGrid
from . import entry as entry_codec
from .core import ACTCore
from .lookup_table import LookupTable
from .trie import AdaptiveCellTrie

#: packed ref layout shared with the rest of the act package
_TRUE = 1


class AdaptiveACTIndex:
    """ACT under a cell budget with query-driven refinement."""

    def __init__(self, polygons: Sequence[Polygon],
                 max_cells: int,
                 grid: Optional[HierarchicalGrid] = None,
                 target_precision_meters: float = 4.0,
                 fanout: int = 256):
        if max_cells < 8 * max(1, len(polygons)):
            raise ACTError(
                f"max_cells={max_cells} too small for {len(polygons)} "
                f"polygons (need >= 8 per polygon)"
            )
        self.polygons = list(polygons)
        self.grid = grid or PlanarGrid.for_polygons(self.polygons)
        self.fanout = fanout
        self.max_cells = max_cells
        self.target_level = min(
            self.grid.level_for_precision(target_precision_meters),
            AdaptiveCellTrie(fanout).max_cell_level,
        )
        self._classifiers = [EdgeClassifier(p) for p in self.polygons]

        coverer = RegionCoverer(self.grid)
        per_polygon = max(8, max_cells // max(1, len(self.polygons)))
        #: cell -> list of packed refs (pid << 1 | is_true)
        self._cells: Dict[int, List[int]] = {}
        for pid, polygon in enumerate(self.polygons):
            covering = coverer.cover_budgeted(
                polygon, per_polygon, self.target_level
            )
            for cell, is_interior in covering.all_cells():
                packed = (pid << 1) | (_TRUE if is_interior else 0)
                self._cells.setdefault(cell, []).append(packed)
        self._resolve_nesting()
        self._rebuild()
        self.adapt_rounds = 0

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    def _resolve_nesting(self) -> None:
        """Split coarse cells that contain finer cells of other polygons.

        Budgeted coverings of different polygons can nest (a huge zone's
        coarse boundary cell may contain a small zone's fine cells). The
        coarse cell is split toward its intruders until the family is
        prefix-free — the same conflict rule as the static build.
        """
        while True:
            ordered = sorted(self._cells, key=cellid.range_min)
            conflicts = set()
            for prev, curr in zip(ordered, ordered[1:]):
                if cellid.range_max(prev) >= cellid.range_min(curr):
                    coarse = prev if cellid.level(prev) < cellid.level(curr) \
                        else curr
                    conflicts.add(coarse)
            if not conflicts:
                return
            for cell in conflicts:
                refs = self._cells.pop(cell, None)
                if refs is None:
                    continue
                for child in cellid.children(cell):
                    merged = self._cells.setdefault(child, [])
                    merged.extend(refs)

    def _rebuild(self) -> None:
        trie = AdaptiveCellTrie(self.fanout)
        table = LookupTable()
        for cell, packed in self._cells.items():
            refs = sorted(set(packed))
            # true-hit dominance
            true_versions = {r & ~1 for r in refs if r & 1}
            refs = [r for r in refs if r & 1 or r not in true_versions]
            if len(refs) == 1:
                trie.insert(cell, entry_codec.make_payload_1(refs[0]))
            elif len(refs) == 2:
                trie.insert(cell, entry_codec.make_payload_2(refs[0], refs[1]))
            else:
                trie.insert(cell, entry_codec.make_offset(
                    table.intern_refs(refs)))
        # the trie is rebuild scaffolding; the columnar core is what serves
        self.core = ACTCore.from_trie(trie, table)
        self.lookup_table = table
        # sorted boundary-cell directory for hit attribution
        self._sorted_cells = sorted(self._cells)

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def size_bytes(self) -> int:
        return self.core.total_bytes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_exact(self, lng: float, lat: float) -> Tuple[int, ...]:
        """Exact polygon ids (candidates refined with PIP tests)."""
        leaf = self.grid.leaf_cell(lng, lat)
        if leaf is None:
            return ()
        entry = self.core.lookup_entry(leaf)
        true_ids, cand_ids = self._decode(entry)
        return tuple(true_ids) + tuple(
            pid for pid in cand_ids if self.polygons[pid].contains(lng, lat)
        )

    def refinement_rate(self, lngs: np.ndarray, lats: np.ndarray) -> float:
        """Fraction of points whose lookup needs at least one PIP test."""
        entries = self.core.lookup_entries(
            self.grid.leaf_cells_batch(
                np.asarray(lngs, dtype=np.float64),
                np.asarray(lats, dtype=np.float64),
            )
        )
        point_idx, _ = self.core.candidate_pairs(entries)
        if entries.shape[0] == 0:
            return 0.0
        return float(np.unique(point_idx).shape[0]) / float(entries.shape[0])

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def adapt(self, sample_lngs: np.ndarray, sample_lats: np.ndarray,
              max_splits: Optional[int] = None) -> int:
        """One refinement round driven by a query-point sample.

        Returns the number of cells split. Splitting stops when the cell
        budget is reached, the hottest cells hit the target level, or
        ``max_splits`` rounds of work are done.
        """
        sample_lngs = np.asarray(sample_lngs, dtype=np.float64)
        sample_lats = np.asarray(sample_lats, dtype=np.float64)
        heat = self._candidate_heat(sample_lngs, sample_lats)
        if not heat:
            return 0

        budget = self.max_cells - self.num_cells
        splits = 0
        limit = max_splits if max_splits is not None else len(heat)
        for cell, _hits in sorted(heat.items(), key=lambda kv: -kv[1]):
            if budget < 3 or splits >= limit:
                break
            if cellid.level(cell) >= self.target_level:
                continue
            added = self._split_cell(cell)
            if added:
                budget -= added - 1
                splits += 1
        if splits:
            self._rebuild()
            self.adapt_rounds += 1
        return splits

    def _candidate_heat(self, lngs: np.ndarray, lats: np.ndarray,
                        ) -> Dict[int, int]:
        """Candidate-hit counts per indexed cell for a sample."""
        leaves = self.grid.leaf_cells_batch(lngs, lats)
        entries = self.core.lookup_entries(leaves)
        point_idx, _ = self.core.candidate_pairs(entries)
        heat: Dict[int, int] = {}
        cells = self._sorted_cells
        for leaf in leaves[np.unique(point_idx)].tolist():
            pos = bisect_right(cells, leaf)
            for candidate in (pos - 1, pos):
                if 0 <= candidate < len(cells) and \
                        cellid.contains(cells[candidate], leaf):
                    heat[cells[candidate]] = heat.get(cells[candidate], 0) + 1
                    break
        return heat

    def _split_cell(self, cell: int) -> int:
        """Replace one cell with its re-classified children.

        Children disjoint from a referenced polygon drop that reference;
        children fully inside become true hits. Returns the number of new
        cells (0 if the cell was already gone).
        """
        refs = self._cells.pop(cell, None)
        if refs is None:
            return 0
        added = 0
        for child in cellid.children(cell):
            frame = self.grid.frame_for_cell(child)
            min_x, min_y, max_x, max_y = self.grid.frame_bounds(frame)
            child_refs: List[int] = []
            for packed in set(refs):
                pid = packed >> 1
                if packed & 1:
                    # true refs stay true for every child
                    child_refs.append(packed)
                    continue
                relation, _ = self._classifiers[pid].classify_bounds(
                    min_x, min_y, max_x, max_y
                )
                if relation is Relation.DISJOINT:
                    continue
                if relation is Relation.WITHIN:
                    child_refs.append((pid << 1) | _TRUE)
                else:
                    child_refs.append(packed)
            if child_refs:
                self._cells[child] = child_refs
                added += 1
        return added

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decode(self, entry: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        tag = entry_codec.tag(entry)
        if tag == entry_codec.TAG_POINTER:
            return (), ()
        if tag == entry_codec.TAG_OFFSET:
            return self.lookup_table.get(entry_codec.offset_value(entry))
        refs = entry_codec.payload_refs(entry)
        return (
            tuple(r >> 1 for r in refs if r & 1),
            tuple(r >> 1 for r in refs if not r & 1),
        )
