"""Vectorized (numpy) ACT lookups for batch joins.

The paper's lookups cost "a few basic integer arithmetics and bitwise
operations" per point. Pure-Python per-point descents cannot show that,
so the trie is frozen into a ``(num_nodes, fanout)`` uint64 matrix and
batches of points descend level-synchronously: at each step the still
active points gather their next entries with one fancy-indexing
operation. This is the engine behind ``ACTIndex.count_points`` and the
Figure 3/4 benchmarks.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..grid import cellid
from . import entry as entry_codec
from .lookup_table import LookupTable
from .trie import KEY_BITS, AdaptiveCellTrie

_MASK31 = np.uint64((1 << 31) - 1)
_MASK60 = np.uint64((1 << KEY_BITS) - 1)


class VectorizedACT:
    """Flat-array snapshot of a trie supporting batch lookups."""

    def __init__(self, trie: AdaptiveCellTrie, lookup_table: LookupTable):
        self._table, self._roots = trie.export_arrays()
        self._lookup_table = lookup_table
        self._offset_cache: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._bits = trie.bits_per_step
        self._max_steps = trie.max_steps
        self._chunk_mask = np.uint64(trie.fanout - 1)

    # ------------------------------------------------------------------
    # Core descent
    # ------------------------------------------------------------------
    def lookup_entries(self, leaf_cells: np.ndarray) -> np.ndarray:
        """Encoded entry per leaf cell id (0 = miss / invalid cell)."""
        cells = leaf_cells.astype(np.uint64, copy=False)
        valid = cells != 0
        faces = (cells >> np.uint64(cellid.POS_BITS)).astype(np.int64)
        faces[~valid] = 0
        entries = self._roots[faces]
        entries[~valid] = 0
        paths = (cells >> np.uint64(1)) & _MASK60

        active = valid & ((entries & np.uint64(3)) == 0) & (entries != 0)
        shift = KEY_BITS
        table = self._table
        for _ in range(self._max_steps):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            shift -= self._bits
            node_idx = ((entries[idx] >> np.uint64(2)) - np.uint64(1)).astype(np.int64)
            chunk = ((paths[idx] >> np.uint64(shift)) & self._chunk_mask).astype(np.int64)
            found = table[node_idx, chunk]
            entries[idx] = found
            active[idx] = ((found & np.uint64(3)) == 0) & (found != 0)
        # anything still pointing at a node after max_steps is a miss
        entries[active] = 0
        return entries

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def count_hits(self, entries: np.ndarray, num_polygons: int,
                   include_candidates: bool = True) -> np.ndarray:
        """Per-polygon hit counts over a batch of looked-up entries.

        ``include_candidates=True`` implements the paper's *approximate*
        join (candidate cells count as hits, with the precision bound);
        ``False`` counts only guaranteed true hits.
        """
        counts = np.zeros(num_polygons, dtype=np.int64)
        tags = entries & np.uint64(3)

        one = entries[tags == np.uint64(entry_codec.TAG_PAYLOAD_1)]
        if one.size:
            self._count_refs((one >> np.uint64(2)) & _MASK31, counts,
                             include_candidates)
        two = entries[tags == np.uint64(entry_codec.TAG_PAYLOAD_2)]
        if two.size:
            self._count_refs((two >> np.uint64(2)) & _MASK31, counts,
                             include_candidates)
            self._count_refs((two >> np.uint64(33)) & _MASK31, counts,
                             include_candidates)
        offsets = entries[tags == np.uint64(entry_codec.TAG_OFFSET)]
        if offsets.size:
            values, freq = np.unique(offsets >> np.uint64(2),
                                     return_counts=True)
            for offset, count in zip(values.tolist(), freq.tolist()):
                true_ids, cand_ids = self._decode_offset(offset)
                for pid in true_ids:
                    counts[pid] += count
                if include_candidates:
                    for pid in cand_ids:
                        counts[pid] += count
        return counts

    def pairs(self, entries: np.ndarray, want_true: bool,
              ) -> Tuple[np.ndarray, np.ndarray]:
        """``(point_indices, polygon_ids)`` of references with the given
        interior flag (``want_true=True`` -> true hits, else candidates)."""
        flag = np.uint64(1 if want_true else 0)
        point_idx_parts = []
        polygon_id_parts = []
        tags = entries & np.uint64(3)

        mask1 = tags == np.uint64(entry_codec.TAG_PAYLOAD_1)
        if mask1.any():
            refs = (entries[mask1] >> np.uint64(2)) & _MASK31
            keep = (refs & np.uint64(1)) == flag
            point_idx_parts.append(np.flatnonzero(mask1)[keep])
            polygon_id_parts.append((refs[keep] >> np.uint64(1)).astype(np.int64))

        mask2 = tags == np.uint64(entry_codec.TAG_PAYLOAD_2)
        if mask2.any():
            base = np.flatnonzero(mask2)
            for shift in (2, 33):
                refs = (entries[mask2] >> np.uint64(shift)) & _MASK31
                keep = (refs & np.uint64(1)) == flag
                point_idx_parts.append(base[keep])
                polygon_id_parts.append(
                    (refs[keep] >> np.uint64(1)).astype(np.int64))

        mask3 = tags == np.uint64(entry_codec.TAG_OFFSET)
        if mask3.any():
            base = np.flatnonzero(mask3)
            offsets = (entries[mask3] >> np.uint64(2)).astype(np.int64)
            for k, offset in enumerate(offsets.tolist()):
                true_ids, cand_ids = self._decode_offset(offset)
                ids = true_ids if want_true else cand_ids
                if ids:
                    point_idx_parts.append(
                        np.full(len(ids), base[k], dtype=np.int64))
                    polygon_id_parts.append(np.asarray(ids, dtype=np.int64))

        if not point_idx_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return (np.concatenate(point_idx_parts),
                np.concatenate(polygon_id_parts))

    def candidate_pairs(self, entries: np.ndarray,
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """``(point_indices, polygon_ids)`` of all *candidate* references.

        These are the pairs an exact join must refine with PIP tests; true
        hits need no refinement by construction.
        """
        return self.pairs(entries, want_true=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _count_refs(self, refs: np.ndarray, counts: np.ndarray,
                    include_candidates: bool) -> None:
        if not include_candidates:
            refs = refs[(refs & np.uint64(1)) == 1]
            if refs.size == 0:
                return
        ids = (refs >> np.uint64(1)).astype(np.int64)
        counts += np.bincount(ids, minlength=counts.shape[0])

    def _decode_offset(self, offset: int,
                       ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        cached = self._offset_cache.get(offset)
        if cached is None:
            cached = self._lookup_table.get(offset)
            self._offset_cache[offset] = cached
        return cached
