"""The Adaptive Cell Trie (ACT) — the paper's primary contribution.

Submodules mirror the paper's Section II structure: per-polygon coverings
(:mod:`repro.grid.coverer`), the merged super covering
(:mod:`~repro.act.supercovering`), the radix tree (:mod:`~repro.act.trie`)
with tagged entries (:mod:`~repro.act.entry`) and the deduplicated lookup
table (:mod:`~repro.act.lookup_table`), plus the vectorized batch engine
(:mod:`~repro.act.vectorized`) and the memory-budgeted adaptive variant
(:mod:`~repro.act.adaptive`).
"""

from .adaptive import AdaptiveACTIndex
from .builder import ACTBuilder, BuildResult
from .index import ACTIndex, QueryResult
from .lookup_table import LookupTable
from .stats import IndexStats
from .supercovering import SuperCovering
from .trie import AdaptiveCellTrie
from .vectorized import VectorizedACT

__all__ = [
    "AdaptiveACTIndex",
    "ACTBuilder",
    "BuildResult",
    "ACTIndex",
    "QueryResult",
    "LookupTable",
    "IndexStats",
    "SuperCovering",
    "AdaptiveCellTrie",
    "VectorizedACT",
]
