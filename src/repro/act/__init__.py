"""The Adaptive Cell Trie (ACT) — the paper's primary contribution.

Submodules mirror the paper's Section II structure: per-polygon coverings
(:mod:`repro.grid.coverer`), the merged super covering
(:mod:`~repro.act.supercovering`), the build-time radix tree
(:mod:`~repro.act.trie`) with tagged entries (:mod:`~repro.act.entry`)
and the deduplicated lookup table (:mod:`~repro.act.lookup_table`). The
canonical query-time representation is the columnar
:class:`~repro.act.core.ACTCore` — the flat-array form every scalar and
batch lookup runs against — plus the memory-budgeted adaptive variant
(:mod:`~repro.act.adaptive`).
"""

from .adaptive import AdaptiveACTIndex
from .builder import ACTBuilder, BuildResult
from .core import ACTCore
from .index import ACTIndex, QueryResult
from .lookup_table import LookupTable
from .stats import IndexStats
from .supercovering import SuperCovering
from .trie import AdaptiveCellTrie

__all__ = [
    "AdaptiveACTIndex",
    "ACTBuilder",
    "ACTCore",
    "BuildResult",
    "ACTIndex",
    "QueryResult",
    "LookupTable",
    "IndexStats",
    "SuperCovering",
    "AdaptiveCellTrie",
]
