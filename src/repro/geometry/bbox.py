"""Axis-aligned bounding boxes in lng/lat ("x"/"y") coordinates.

:class:`Rect` is the workhorse of the planar grid, the R-tree baseline, and
cell/polygon classification. Coordinates follow the GIS convention used
throughout the library: ``x`` is longitude, ``y`` is latitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from ..errors import GeometryError

Point = Tuple[float, float]


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"degenerate rect: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Smallest rect containing every point; raises on empty input."""
        it = iter(points)
        try:
            x0, y0 = next(it)
        except StopIteration:
            raise GeometryError(
                "Rect.from_points: empty point sequence") from None
        min_x = max_x = x0
        min_y = max_y = y0
        for x, y in it:
            if x < min_x:
                min_x = x
            elif x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            elif y > max_y:
                max_y = y
        return Rect(min_x, min_y, max_x, max_y)

    @staticmethod
    def from_center(cx: float, cy: float, half_w: float, half_h: float) -> "Rect":
        """Rect centered at ``(cx, cy)`` with half-extents."""
        return Rect(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return (0.5 * (self.min_x + self.max_x), 0.5 * (self.min_y + self.max_y))

    @property
    def diagonal(self) -> float:
        return math.hypot(self.width, self.height)

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order starting at (min_x, min_y)."""
        return (
            (self.min_x, self.min_y),
            (self.max_x, self.min_y),
            (self.max_x, self.max_y),
            (self.min_x, self.max_y),
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Closed containment test."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_point_open(self, x: float, y: float) -> bool:
        """Open (strict interior) containment test."""
        return self.min_x < x < self.max_x and self.min_y < y < self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.min_x
            and self.max_x >= other.max_x
            and self.min_y <= other.min_y
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed intersection test (touching edges intersect)."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap rect, or ``None`` when disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return Rect(min_x, min_y, max_x, max_y)

    def expanded(self, margin: float) -> "Rect":
        """Rect grown by ``margin`` on every side (shrinks if negative)."""
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (R*-tree split metric)."""
        return self.union(other).area - self.area

    def overlap_area(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return inter.area if inter is not None else 0.0

    def quadrants(self) -> Tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into four equal quadrants: SW, SE, NW, NE."""
        cx, cy = self.center
        return (
            Rect(self.min_x, self.min_y, cx, cy),
            Rect(cx, self.min_y, self.max_x, cy),
            Rect(self.min_x, cy, cx, self.max_y),
            Rect(cx, cy, self.max_x, self.max_y),
        )

    def distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from the rect to a point (0 inside)."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)

    def sample_grid(self, nx: int, ny: int) -> Iterator[Point]:
        """Yield an ``nx`` x ``ny`` lattice of interior points (for tests)."""
        if nx < 1 or ny < 1:
            raise GeometryError("sample_grid requires nx, ny >= 1")
        for ix in range(nx):
            for iy in range(ny):
                fx = (ix + 0.5) / nx
                fy = (iy + 0.5) / ny
                yield (
                    self.min_x + fx * self.width,
                    self.min_y + fy * self.height,
                )


def union_all(rects: Sequence[Rect]) -> Rect:
    """Union of a non-empty sequence of rects."""
    if not rects:
        raise GeometryError("union_all: empty sequence")
    out = rects[0]
    for r in rects[1:]:
        out = out.union(r)
    return out
