"""Polygon primitives: rings, polygons with holes, and multipolygons.

Rings store their vertices both as Python tuples (for exact iteration) and
as cached numpy edge arrays (for vectorized point-in-polygon and covering
classification). Coordinates are ``(x, y) = (lng, lat)`` in degrees unless a
local projection is applied by the caller.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import InvalidPolygonError
from .bbox import Rect
from .pip import point_in_rings, points_in_rings
from .segment import segment_intersects_rect

Point = Tuple[float, float]


class Ring:
    """A simple closed ring (first vertex is not repeated at the end)."""

    __slots__ = ("vertices", "__dict__")

    def __init__(self, vertices: Sequence[Point]):
        verts = [(float(x), float(y)) for x, y in vertices]
        if len(verts) >= 2 and verts[0] == verts[-1]:
            verts = verts[:-1]  # normalize away an explicitly closed ring
        if len(verts) < 3:
            raise InvalidPolygonError(
                f"ring needs >= 3 distinct vertices, got {len(verts)}"
            )
        self.vertices: List[Point] = verts

    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.vertices)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ring) and self.vertices == other.vertices

    def __repr__(self) -> str:
        return f"Ring({len(self.vertices)} vertices)"

    @cached_property
    def signed_area(self) -> float:
        """Shoelace area: positive for counter-clockwise orientation."""
        total = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            x0, y0 = verts[i]
            x1, y1 = verts[(i + 1) % n]
            total += x0 * y1 - x1 * y0
        return 0.5 * total

    @property
    def area(self) -> float:
        return abs(self.signed_area)

    @property
    def is_ccw(self) -> bool:
        return self.signed_area > 0.0

    @cached_property
    def bbox(self) -> Rect:
        return Rect.from_points(self.vertices)

    @cached_property
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Edges as ``(xs, ys, xe, ye)`` numpy arrays (closing edge included)."""
        arr = np.asarray(self.vertices, dtype=np.float64)
        nxt = np.roll(arr, -1, axis=0)
        return (arr[:, 0].copy(), arr[:, 1].copy(),
                nxt[:, 0].copy(), nxt[:, 1].copy())

    def edges(self) -> Iterator[Tuple[Point, Point]]:
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            yield verts[i], verts[(i + 1) % n]

    def reversed(self) -> "Ring":
        return Ring(list(reversed(self.vertices)))

    @cached_property
    def perimeter(self) -> float:
        total = 0.0
        for (x0, y0), (x1, y1) in self.edges():
            total += float(np.hypot(x1 - x0, y1 - y0))
        return total


class Polygon:
    """A polygon with one shell ring and zero or more hole rings.

    The shell is normalized to counter-clockwise and holes to clockwise
    orientation on construction, so downstream code can rely on ring
    orientation without re-checking.
    """

    __slots__ = ("shell", "holes", "__dict__")

    def __init__(self, shell: Sequence[Point] | Ring,
                 holes: Iterable[Sequence[Point] | Ring] = ()):
        shell_ring = shell if isinstance(shell, Ring) else Ring(shell)
        if not shell_ring.is_ccw:
            shell_ring = shell_ring.reversed()
        hole_rings: List[Ring] = []
        for hole in holes:
            ring = hole if isinstance(hole, Ring) else Ring(hole)
            if ring.is_ccw:
                ring = ring.reversed()
            hole_rings.append(ring)
        if shell_ring.area == 0.0:
            raise InvalidPolygonError("polygon shell has zero area")
        self.shell = shell_ring
        self.holes = hole_rings

    def __repr__(self) -> str:
        return (f"Polygon(shell={len(self.shell)} vertices, "
                f"holes={len(self.holes)})")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Polygon)
                and self.shell == other.shell
                and self.holes == other.holes)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        return self.shell.area - sum(h.area for h in self.holes)

    @cached_property
    def bbox(self) -> Rect:
        return self.shell.bbox

    @property
    def num_vertices(self) -> int:
        return len(self.shell) + sum(len(h) for h in self.holes)

    def rings(self) -> Iterator[Ring]:
        yield self.shell
        yield from self.holes

    @cached_property
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All rings' edges concatenated: ``(xs, ys, xe, ye)``."""
        parts = [ring.edge_arrays for ring in self.rings()]
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
            np.concatenate([p[3] for p in parts]),
        )

    def edges(self) -> Iterator[Tuple[Point, Point]]:
        for ring in self.rings():
            yield from ring.edges()

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, x: float, y: float) -> bool:
        """Even/odd containment; inside shell and outside every hole."""
        if not self.bbox.contains_point(x, y):
            return False
        xs, ys, xe, ye = self.edge_arrays
        return point_in_rings(x, y, xs, ys, xe, ye)

    def contains_batch(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Vectorized containment over many points."""
        px = np.asarray(px, dtype=np.float64)
        py = np.asarray(py, dtype=np.float64)
        box = self.bbox
        out = np.zeros(px.shape[0], dtype=bool)
        mask = ((px >= box.min_x) & (px <= box.max_x)
                & (py >= box.min_y) & (py <= box.max_y))
        if mask.any():
            xs, ys, xe, ye = self.edge_arrays
            out[mask] = points_in_rings(px[mask], py[mask], xs, ys, xe, ye)
        return out

    def any_edge_intersects_rect(self, rect: Rect) -> bool:
        """True when any ring edge touches ``rect`` (closed semantics).

        Vectorized Cohen–Sutherland over ``edge_arrays``: endpoint
        outcodes answer the trivially-inside and trivially-outside
        edges in a handful of array ops; only the (rare) straddling
        remainder falls back to the exact scalar segment test.
        """
        if not self.bbox.intersects(rect):
            return False
        xs, ys, xe, ye = self.edge_arrays
        code_s = _outcodes(xs, ys, rect)
        code_e = _outcodes(xe, ye, rect)
        if (code_s == 0).any() or (code_e == 0).any():
            return True  # an endpoint inside the closed rect
        for i in np.flatnonzero((code_s & code_e) == 0).tolist():
            if segment_intersects_rect(xs[i], ys[i], xe[i], ye[i], rect):
                return True
        return False

    def distance_sq(self, x: float, y: float) -> float:
        """Squared distance to the polygon (0 when inside).

        One vectorized point-to-segment pass over ``edge_arrays``
        instead of a Python loop per edge.
        """
        if self.contains(x, y):
            return 0.0
        xs, ys, xe, ye = self.edge_arrays
        abx = xe - xs
        aby = ye - ys
        apx = x - xs
        apy = y - ys
        denom = abx * abx + aby * aby
        t = np.zeros_like(denom)
        nz = denom > 0.0
        t[nz] = (apx[nz] * abx[nz] + apy[nz] * aby[nz]) / denom[nz]
        np.clip(t, 0.0, 1.0, out=t)
        qx = t * abx - apx
        qy = t * aby - apy
        return float(np.min(qx * qx + qy * qy))

    def distance(self, x: float, y: float) -> float:
        return float(np.sqrt(self.distance_sq(x, y)))

    @cached_property
    def centroid(self) -> Point:
        """Area-weighted centroid of the shell minus holes.

        Vertices are translated to a local origin before the shoelace
        accumulation: tiny polygons at large coordinates (a 1 m hexagon
        near lng -74) would otherwise lose the centroid to catastrophic
        cancellation in the cross products.
        """
        ox, oy = self.bbox.center
        cx = cy = total = 0.0
        for ring, sign in [(self.shell, 1.0)] + [(h, -1.0) for h in self.holes]:
            verts = ring.vertices
            n = len(verts)
            a = rcx = rcy = 0.0
            for i in range(n):
                x0 = verts[i][0] - ox
                y0 = verts[i][1] - oy
                x1 = verts[(i + 1) % n][0] - ox
                y1 = verts[(i + 1) % n][1] - oy
                cross = x0 * y1 - x1 * y0
                a += cross
                rcx += (x0 + x1) * cross
                rcy += (y0 + y1) * cross
            # ring signed area = a / 2; centroid terms need / (6 * area)
            ring_area = abs(a) * 0.5
            if ring_area == 0.0:
                continue
            factor = sign * ring_area
            denom = 3.0 * a  # == 6 * signed_area
            cx += factor * (rcx / denom)
            cy += factor * (rcy / denom)
            total += factor
        if total == 0.0:
            return self.bbox.center
        return (cx / total + ox, cy / total + oy)


class MultiPolygon:
    """An ordered collection of polygons treated as one geometry."""

    __slots__ = ("polygons", "__dict__")

    def __init__(self, polygons: Iterable[Polygon]):
        self.polygons: List[Polygon] = list(polygons)
        if not self.polygons:
            raise InvalidPolygonError("MultiPolygon requires >= 1 polygon")

    def __len__(self) -> int:
        return len(self.polygons)

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)

    def __repr__(self) -> str:
        return f"MultiPolygon({len(self.polygons)} polygons)"

    @property
    def area(self) -> float:
        return sum(p.area for p in self.polygons)

    @cached_property
    def bbox(self) -> Rect:
        out = self.polygons[0].bbox
        for p in self.polygons[1:]:
            out = out.union(p.bbox)
        return out

    def contains(self, x: float, y: float) -> bool:
        return any(p.contains(x, y) for p in self.polygons)

    def distance(self, x: float, y: float) -> float:
        return min(p.distance(x, y) for p in self.polygons)


def _outcodes(xs: np.ndarray, ys: np.ndarray, rect: Rect) -> np.ndarray:
    """Vectorized Cohen–Sutherland outcodes (zero = inside closed rect)."""
    code = (xs < rect.min_x).astype(np.uint8)
    code |= (xs > rect.max_x).astype(np.uint8) << 1
    code |= (ys < rect.min_y).astype(np.uint8) << 2
    code |= (ys > rect.max_y).astype(np.uint8) << 3
    return code


def regular_polygon(cx: float, cy: float, radius: float, n: int,
                    phase: float = 0.0) -> Polygon:
    """A regular ``n``-gon (handy for tests and examples)."""
    if n < 3:
        raise InvalidPolygonError(f"regular polygon needs n >= 3, got {n}")
    pts = []
    for k in range(n):
        theta = phase + 2.0 * np.pi * k / n
        pts.append((cx + radius * float(np.cos(theta)),
                    cy + radius * float(np.sin(theta))))
    return Polygon(pts)


def box_polygon(rect: Rect) -> Polygon:
    """The rect's boundary as a polygon."""
    return Polygon(list(rect.corners()))
