"""Minimal Well-Known Text reader/writer.

Supports the geometry types the library uses: ``POINT``, ``POLYGON`` and
``MULTIPOLYGON``. The parser is a small recursive-descent tokenizer — no
dependency on external GIS packages.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple, Union

from ..errors import ParseError
from .polygon import MultiPolygon, Polygon

Point = Tuple[float, float]
Geometry = Union[Point, Polygon, MultiPolygon]

_TOKEN_RE = re.compile(r"\s*([A-Za-z]+|\(|\)|,|[-+0-9.eE]+)")


class _Tokens:
    """Token stream over a WKT string."""

    def __init__(self, text: str):
        self.tokens: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                remainder = text[pos:].strip()
                if remainder:
                    raise ParseError(f"unexpected WKT input at: {remainder[:30]!r}")
                break
            self.tokens.append(match.group(1))
            pos = match.end()
        self.index = 0

    def peek(self) -> str:
        if self.index >= len(self.tokens):
            raise ParseError("unexpected end of WKT input")
        return self.tokens[self.index]

    def next(self) -> str:
        token = self.peek()
        self.index += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token != expected:
            raise ParseError(f"expected {expected!r}, got {token!r}")

    def done(self) -> bool:
        return self.index >= len(self.tokens)


def _parse_coord(tokens: _Tokens) -> Point:
    try:
        x = float(tokens.next())
        y = float(tokens.next())
    except ValueError as exc:
        raise ParseError(f"bad coordinate in WKT: {exc}") from exc
    return (x, y)


def _parse_ring(tokens: _Tokens) -> List[Point]:
    tokens.expect("(")
    points = [_parse_coord(tokens)]
    while tokens.peek() == ",":
        tokens.next()
        points.append(_parse_coord(tokens))
    tokens.expect(")")
    return points


def _parse_polygon_body(tokens: _Tokens) -> Polygon:
    tokens.expect("(")
    shell = _parse_ring(tokens)
    holes = []
    while tokens.peek() == ",":
        tokens.next()
        holes.append(_parse_ring(tokens))
    tokens.expect(")")
    return Polygon(shell, holes)


def loads(text: str) -> Geometry:
    """Parse a WKT string into a point tuple, Polygon, or MultiPolygon."""
    tokens = _Tokens(text)
    kind = tokens.next().upper()
    if kind == "POINT":
        tokens.expect("(")
        point = _parse_coord(tokens)
        tokens.expect(")")
        result: Geometry = point
    elif kind == "POLYGON":
        result = _parse_polygon_body(tokens)
    elif kind == "MULTIPOLYGON":
        tokens.expect("(")
        polygons = [_parse_polygon_body(tokens)]
        while tokens.peek() == ",":
            tokens.next()
            polygons.append(_parse_polygon_body(tokens))
        tokens.expect(")")
        result = MultiPolygon(polygons)
    else:
        raise ParseError(f"unsupported WKT geometry type: {kind!r}")
    if not tokens.done():
        raise ParseError(f"trailing WKT tokens after {kind}")
    return result


def _ring_wkt(points: Sequence[Point]) -> str:
    closed = list(points)
    if closed[0] != closed[-1]:
        closed.append(closed[0])
    return "(" + ", ".join(f"{x:.9g} {y:.9g}" for x, y in closed) + ")"


def _polygon_body(polygon: Polygon) -> str:
    rings = [_ring_wkt(polygon.shell.vertices)]
    rings.extend(_ring_wkt(h.vertices) for h in polygon.holes)
    return "(" + ", ".join(rings) + ")"


def dumps(geometry: Geometry) -> str:
    """Serialize a point tuple, Polygon, or MultiPolygon to WKT."""
    if isinstance(geometry, Polygon):
        return "POLYGON " + _polygon_body(geometry)
    if isinstance(geometry, MultiPolygon):
        bodies = ", ".join(_polygon_body(p) for p in geometry.polygons)
        return f"MULTIPOLYGON ({bodies})"
    if isinstance(geometry, tuple) and len(geometry) == 2:
        x, y = geometry
        return f"POINT ({x:.9g} {y:.9g})"
    raise ParseError(f"cannot serialize {type(geometry).__name__} to WKT")
