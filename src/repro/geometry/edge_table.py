"""Packed edge table: one flat edge soup for a whole polygon set.

:class:`PackedEdgeTable` concatenates every polygon's edges (shell and
holes, closing edges included) into four flat float64 arrays with a CSR
``indptr`` per polygon, plus the per-polygon bounding boxes as columns.
Its :meth:`~PackedEdgeTable.refine` kernel evaluates the even/odd
crossing-number test for an arbitrary batch of ``(point, polygon)``
candidate pairs in one vectorized pass: pairs expand to per-pair edge
ranges with ``np.repeat`` gathers, the segment-crossing predicate runs
on the expanded arrays, and a per-pair parity reduction produces the
verdicts. No Python executes per pair or per polygon.

This is the columnar analog of calling ``Polygon.contains_batch`` once
per polygon (the grouped refinement the join engine used before): the
arithmetic is element-for-element identical — the same bounding-box
pre-filter, the same crossing condition, interpolation, and comparison
— so verdicts are bit-identical to the grouped path. The win is purely
dispatch shape: skewed workloads where thousands of polygons each own a
handful of candidates collapse from thousands of tiny numpy calls into
a few large ones.

Peak memory is bounded by a chunked driver: expanded ``(pair, edge)``
rows are processed in chunks of at most ``chunk_edges`` gathered edges
(a chunk always admits at least one pair, so a single huge polygon
degrades to per-pair processing instead of failing).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .polygon import Polygon

#: Default cap on gathered (pair, edge) rows per refinement chunk.
#: 1<<21 rows keep the working set around ~100 MB across the dozen
#: float64/bool temporaries the kernel materializes.
DEFAULT_CHUNK_EDGES = 1 << 21


class PackedEdgeTable:
    """All polygons' edges as flat arrays, CSR-indexed per polygon."""

    __slots__ = ("xs", "ys", "xe", "ye", "indptr",
                 "min_x", "min_y", "max_x", "max_y",
                 "num_polygons", "chunk_edges")

    def __init__(self, xs: np.ndarray, ys: np.ndarray, xe: np.ndarray,
                 ye: np.ndarray, indptr: np.ndarray, min_x: np.ndarray,
                 min_y: np.ndarray, max_x: np.ndarray, max_y: np.ndarray,
                 chunk_edges: int = DEFAULT_CHUNK_EDGES):
        self.xs = xs
        self.ys = ys
        self.xe = xe
        self.ye = ye
        self.indptr = indptr
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y
        self.num_polygons = indptr.shape[0] - 1
        self.chunk_edges = max(1, int(chunk_edges))

    @classmethod
    def from_polygons(cls, polygons: Sequence[Polygon],
                      chunk_edges: int = DEFAULT_CHUNK_EDGES,
                      ) -> "PackedEdgeTable":
        """Pack a polygon set (holes included, even/odd semantics)."""
        num = len(polygons)
        indptr = np.zeros(num + 1, dtype=np.int64)
        min_x = np.empty(num, dtype=np.float64)
        min_y = np.empty(num, dtype=np.float64)
        max_x = np.empty(num, dtype=np.float64)
        max_y = np.empty(num, dtype=np.float64)
        xs_parts = []
        ys_parts = []
        xe_parts = []
        ye_parts = []
        for pid, polygon in enumerate(polygons):
            xs, ys, xe, ye = polygon.edge_arrays
            xs_parts.append(xs)
            ys_parts.append(ys)
            xe_parts.append(xe)
            ye_parts.append(ye)
            indptr[pid + 1] = indptr[pid] + xs.shape[0]
            box = polygon.bbox
            min_x[pid] = box.min_x
            min_y[pid] = box.min_y
            max_x[pid] = box.max_x
            max_y[pid] = box.max_y
        empty = np.empty(0, dtype=np.float64)
        return cls(
            np.concatenate(xs_parts) if xs_parts else empty,
            np.concatenate(ys_parts) if ys_parts else empty,
            np.concatenate(xe_parts) if xe_parts else empty,
            np.concatenate(ye_parts) if ye_parts else empty,
            indptr, min_x, min_y, max_x, max_y, chunk_edges=chunk_edges,
        )

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    @property
    def size_bytes(self) -> int:
        return (self.xs.nbytes + self.ys.nbytes + self.xe.nbytes
                + self.ye.nbytes + self.indptr.nbytes
                + self.min_x.nbytes * 4)

    def edge_counts(self, polygon_ids: np.ndarray) -> np.ndarray:
        """Edges per polygon for a batch of polygon ids."""
        return self.indptr[polygon_ids + 1] - self.indptr[polygon_ids]

    # ------------------------------------------------------------------
    # The refinement kernel
    # ------------------------------------------------------------------
    def refine(self, point_idx: np.ndarray, polygon_ids: np.ndarray,
               lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """PIP verdict per ``(point, polygon)`` candidate pair.

        ``point_idx`` indexes into ``lngs``/``lats``; the returned
        boolean mask is aligned with the input pair order and equals
        what ``polygons[polygon_ids[k]].contains_batch`` would answer
        for each pair, bit for bit.
        """
        n = int(point_idx.shape[0])
        inside = np.zeros(n, dtype=bool)
        if n == 0:
            return inside
        px = np.asarray(lngs, dtype=np.float64)[point_idx]
        py = np.asarray(lats, dtype=np.float64)[point_idx]
        pids = polygon_ids
        # the same closed bbox pre-filter contains_batch applies
        in_box = ((px >= self.min_x[pids]) & (px <= self.max_x[pids])
                  & (py >= self.min_y[pids]) & (py <= self.max_y[pids]))
        keep = np.flatnonzero(in_box)
        if keep.size == 0:
            return inside
        counts = self.edge_counts(pids[keep])
        cum = np.cumsum(counts)
        chunk = self.chunk_edges
        start = 0
        total_pairs = keep.size
        while start < total_pairs:
            base = int(cum[start] - counts[start])
            stop = int(np.searchsorted(cum, base + chunk, side="right"))
            stop = min(max(stop, start + 1), total_pairs)
            sel = keep[start:stop]
            inside[sel] = self._refine_chunk(
                px[sel], py[sel], counts[start:stop],
                self.indptr[pids[sel]],
            )
            start = stop
        return inside

    def _refine_chunk(self, px: np.ndarray, py: np.ndarray,
                      counts: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Crossing-number parity for one bounded chunk of pairs."""
        num_pairs = px.shape[0]
        total = int(counts.sum())
        if total == 0:
            return np.zeros(num_pairs, dtype=bool)
        cum = np.cumsum(counts)
        # expanded gather: row r of the chunk is edge (take[r]) of pair
        # (pair_of_row[r])
        take = (np.arange(total, dtype=np.int64)
                - np.repeat(cum - counts, counts)
                + np.repeat(starts, counts))
        eys = self.ys[take]
        eye = self.ye[take]
        ppy = np.repeat(py, counts)
        cond = (eys > ppy) != (eye > ppy)
        hit = np.flatnonzero(cond)
        if hit.size == 0:
            return np.zeros(num_pairs, dtype=bool)
        t = (ppy[hit] - eys[hit]) / (eye[hit] - eys[hit])
        exs = self.xs[take[hit]]
        x_at = exs + t * (self.xe[take[hit]] - exs)
        crossing = hit[x_at > np.repeat(px, counts)[hit]]
        pair_of_row = np.repeat(np.arange(num_pairs, dtype=np.int64),
                                counts)
        crossings = np.bincount(pair_of_row[crossing], minlength=num_pairs)
        return (crossings & 1) == 1

    def __repr__(self) -> str:
        return (f"PackedEdgeTable({self.num_polygons} polygons, "
                f"{self.num_edges:,} edges, "
                f"{self.size_bytes / 1e6:.2f} MB)")
