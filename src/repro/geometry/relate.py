"""Classification of grid cells (rect bounds) against polygons.

The covering algorithm repeatedly asks: *is this cell disjoint from,
intersecting the boundary of, or fully within the polygon?* The answer
drives whether the cell is skipped, refined, or emitted as an interior
cell. :class:`EdgeClassifier` answers it in amortized sub-linear time by
threading the set of boundary edges relevant to a cell down the quadtree
recursion (edges that miss a parent cell cannot hit its children).

Two code paths are kept deliberately: a vectorized Liang–Barsky for large
edge sets (polygon roots, complex coastlines) and an allocation-free
pure-Python loop for the small per-cell edge sets that dominate deep
recursion levels, where numpy's per-call overhead would exceed the work.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .bbox import Rect
from .pip import point_in_rings
from .polygon import Polygon

#: Edge-set size below which the scalar path beats numpy dispatch.
_SCALAR_CUTOFF = 48


class Relation(Enum):
    """How a cell relates to a polygon."""

    DISJOINT = 0       #: no overlap at all
    INTERSECTS = 1     #: the polygon boundary passes through the cell
    WITHIN = 2         #: the cell lies fully inside the polygon interior


def edges_intersect_rect_mask(xs: np.ndarray, ys: np.ndarray,
                              xe: np.ndarray, ye: np.ndarray,
                              rect: Rect) -> np.ndarray:
    """Vectorized Liang–Barsky: which closed segments touch the closed rect.

    Returns a boolean mask over the edge arrays. Touching (t0 == t1)
    counts as intersecting, matching the covering algorithm's closed-cell
    semantics.
    """
    return _edges_mask_bounds(xs, ys, xe, ye,
                              rect.min_x, rect.min_y, rect.max_x, rect.max_y)


def _edges_mask_bounds(xs: np.ndarray, ys: np.ndarray,
                       xe: np.ndarray, ye: np.ndarray,
                       min_x: float, min_y: float,
                       max_x: float, max_y: float) -> np.ndarray:
    dx = xe - xs
    dy = ye - ys
    n = xs.shape[0]
    t0 = np.zeros(n, dtype=np.float64)
    t1 = np.ones(n, dtype=np.float64)
    ok = np.ones(n, dtype=bool)
    for p, q in (
        (-dx, xs - min_x),
        (dx, max_x - xs),
        (-dy, ys - min_y),
        (dy, max_y - ys),
    ):
        zero = p == 0.0
        ok &= ~(zero & (q < 0.0))
        safe_p = np.where(zero, 1.0, p)
        r = q / safe_p
        neg = (p < 0.0) & ok
        pos = (p > 0.0) & ok
        t0 = np.where(neg, np.maximum(t0, r), t0)
        t1 = np.where(pos, np.minimum(t1, r), t1)
    ok &= t0 <= t1
    return ok


def _segment_hits_bounds(x0: float, y0: float, x1: float, y1: float,
                         min_x: float, min_y: float,
                         max_x: float, max_y: float) -> bool:
    """Scalar Liang–Barsky (closed semantics), fully unrolled."""
    t0 = 0.0
    t1 = 1.0
    dx = x1 - x0
    dy = y1 - y0

    p = -dx
    q = x0 - min_x
    if p == 0.0:
        if q < 0.0:
            return False
    else:
        r = q / p
        if p < 0.0:
            if r > t1:
                return False
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return False
            if r < t1:
                t1 = r

    p = dx
    q = max_x - x0
    if p == 0.0:
        if q < 0.0:
            return False
    else:
        r = q / p
        if p < 0.0:
            if r > t1:
                return False
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return False
            if r < t1:
                t1 = r

    p = -dy
    q = y0 - min_y
    if p == 0.0:
        if q < 0.0:
            return False
    else:
        r = q / p
        if p < 0.0:
            if r > t1:
                return False
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return False
            if r < t1:
                t1 = r

    p = dy
    q = max_y - y0
    if p == 0.0:
        if q < 0.0:
            return False
    else:
        r = q / p
        if p < 0.0:
            if r > t1:
                return False
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return False
            if r < t1:
                t1 = r

    return t0 <= t1


class EdgeClassifier:
    """Classifies cell bounds against one polygon with edge-set pruning.

    A classification returns both the :class:`Relation` and the edges that
    touch the bounds, which callers pass back when classifying the cell's
    children. This turns the naive ``O(cells * edges)`` covering cost into
    roughly ``O(boundary_cells * local_edges)``.
    """

    __slots__ = ("polygon", "_xs", "_ys", "_xe", "_ye",
                 "_xs_l", "_ys_l", "_xe_l", "_ye_l",
                 "_bbox", "_num_edges")

    def __init__(self, polygon: Polygon):
        self.polygon = polygon
        xs, ys, xe, ye = polygon.edge_arrays
        self._xs = xs
        self._ys = ys
        self._xe = xe
        self._ye = ye
        # python-list mirrors for the scalar fast path
        self._xs_l = xs.tolist()
        self._ys_l = ys.tolist()
        self._xe_l = xe.tolist()
        self._ye_l = ye.tolist()
        self._bbox = polygon.bbox
        self._num_edges = xs.shape[0]

    @property
    def root_edges(self) -> None:
        """Edge set marker for a root (unclassified) cell."""
        return None

    # ------------------------------------------------------------------
    # Bounds-based API (hot path; no Rect allocation)
    # ------------------------------------------------------------------
    def classify_bounds(self, min_x: float, min_y: float,
                        max_x: float, max_y: float,
                        edge_idx: Optional[Sequence[int]] = None,
                        ) -> Tuple[Relation, Optional[List[int]]]:
        """Classify a cell given as raw bounds.

        ``edge_idx`` is the (parent's) candidate edge index list, or
        ``None`` meaning *all edges*. Returns the relation and the list of
        edge indices touching these bounds (only meaningful when the
        relation is ``INTERSECTS``).
        """
        box = self._bbox
        if (box.min_x > max_x or box.max_x < min_x
                or box.min_y > max_y or box.max_y < min_y):
            return Relation.DISJOINT, []

        if edge_idx is None:
            if self._num_edges > _SCALAR_CUTOFF:
                mask = _edges_mask_bounds(self._xs, self._ys,
                                          self._xe, self._ye,
                                          min_x, min_y, max_x, max_y)
                touching = np.flatnonzero(mask).tolist()
            else:
                touching = self._scalar_filter(range(self._num_edges),
                                               min_x, min_y, max_x, max_y)
        elif len(edge_idx) > _SCALAR_CUTOFF:
            idx = np.asarray(edge_idx, dtype=np.int64)
            mask = _edges_mask_bounds(self._xs[idx], self._ys[idx],
                                      self._xe[idx], self._ye[idx],
                                      min_x, min_y, max_x, max_y)
            touching = idx[mask].tolist()
        else:
            touching = self._scalar_filter(edge_idx,
                                           min_x, min_y, max_x, max_y)

        if touching:
            return Relation.INTERSECTS, touching
        return self._classify_empty(min_x, min_y, max_x, max_y), touching

    def _scalar_filter(self, edge_idx, min_x: float, min_y: float,
                       max_x: float, max_y: float) -> List[int]:
        xs = self._xs_l
        ys = self._ys_l
        xe = self._xe_l
        ye = self._ye_l
        out: List[int] = []
        append = out.append
        for i in edge_idx:
            x0 = xs[i]
            x1 = xe[i]
            if (x0 < min_x and x1 < min_x) or (x0 > max_x and x1 > max_x):
                continue
            y0 = ys[i]
            y1 = ye[i]
            if (y0 < min_y and y1 < min_y) or (y0 > max_y and y1 > max_y):
                continue
            if _segment_hits_bounds(x0, y0, x1, y1,
                                    min_x, min_y, max_x, max_y):
                append(i)
        return out

    def _classify_empty(self, min_x: float, min_y: float,
                        max_x: float, max_y: float) -> Relation:
        """No boundary edge in the cell: fully inside or fully outside."""
        cx = 0.5 * (min_x + max_x)
        cy = 0.5 * (min_y + max_y)
        if point_in_rings(cx, cy, self._xs, self._ys, self._xe, self._ye):
            return Relation.WITHIN
        return Relation.DISJOINT

    # ------------------------------------------------------------------
    # Rect-based convenience API
    # ------------------------------------------------------------------
    def classify(self, rect: Rect,
                 edge_idx: Optional[Sequence[int]] = None,
                 ) -> Tuple[Relation, Optional[List[int]]]:
        """Classify a :class:`~repro.geometry.bbox.Rect` (wrapper around
        :meth:`classify_bounds`)."""
        return self.classify_bounds(rect.min_x, rect.min_y,
                                    rect.max_x, rect.max_y, edge_idx)


def relate_rect(polygon: Polygon, rect: Rect) -> Relation:
    """One-shot rect/polygon classification (no recursion state)."""
    relation, _ = EdgeClassifier(polygon).classify(rect)
    return relation
