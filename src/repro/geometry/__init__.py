"""Planar computational-geometry substrate.

Everything the ACT index and its baselines need: bounding boxes, segment
predicates, polygons with holes, point-in-polygon tests, cell/polygon
classification, local metric projections, and WKT/GeoJSON IO.
"""

from .bbox import Rect, union_all
from .distance import (
    LocalProjection,
    haversine_meters,
    meters_per_degree,
    point_polygon_distance_meters,
)
from .edge_table import PackedEdgeTable
from .pip import point_in_ring, point_in_rings, points_in_rings, winding_number
from .polygon import MultiPolygon, Polygon, Ring, box_polygon, regular_polygon
from .relate import EdgeClassifier, Relation, relate_rect
from .segment import (
    clip_segment_to_rect,
    on_segment,
    orientation,
    point_segment_distance,
    point_segment_distance_sq,
    segment_intersection_point,
    segment_intersects_rect,
    segments_intersect,
)

__all__ = [
    "Rect",
    "union_all",
    "LocalProjection",
    "haversine_meters",
    "meters_per_degree",
    "point_polygon_distance_meters",
    "PackedEdgeTable",
    "point_in_ring",
    "point_in_rings",
    "points_in_rings",
    "winding_number",
    "MultiPolygon",
    "Polygon",
    "Ring",
    "box_polygon",
    "regular_polygon",
    "EdgeClassifier",
    "Relation",
    "relate_rect",
    "clip_segment_to_rect",
    "on_segment",
    "orientation",
    "point_segment_distance",
    "point_segment_distance_sq",
    "segment_intersection_point",
    "segment_intersects_rect",
    "segments_intersect",
]
