"""Segment-level predicates: orientation, intersection, clipping, distance.

These primitives underpin point-in-polygon tests, cell/polygon
classification, and the covering recursion. They operate on raw float
tuples to keep inner loops allocation-free.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from .bbox import Rect

Point = Tuple[float, float]

#: Relative epsilon used by the robust-ish orientation predicate.
_EPS = 1e-12


def orientation(ax: float, ay: float, bx: float, by: float,
                cx: float, cy: float) -> int:
    """Sign of the cross product (b - a) x (c - a).

    Returns ``1`` for counter-clockwise, ``-1`` for clockwise and ``0`` for
    (numerically) collinear points. The collinearity band scales with the
    magnitudes involved, so large coordinates do not spuriously register
    as turns.
    """
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    scale = abs(bx - ax) + abs(by - ay) + abs(cx - ax) + abs(cy - ay)
    if abs(cross) <= _EPS * scale * scale:
        return 0
    return 1 if cross > 0.0 else -1


def on_segment(px: float, py: float, ax: float, ay: float,
               bx: float, by: float) -> bool:
    """True when point p lies on the closed segment a-b (assumes collinear)."""
    return (
        min(ax, bx) - _EPS <= px <= max(ax, bx) + _EPS
        and min(ay, by) - _EPS <= py <= max(ay, by) + _EPS
    )


def segments_intersect(ax: float, ay: float, bx: float, by: float,
                       cx: float, cy: float, dx: float, dy: float) -> bool:
    """Closed intersection test between segments a-b and c-d.

    Touching endpoints count as intersections, matching the closed-cell
    semantics used by the covering algorithm (a polygon edge grazing a cell
    boundary makes the cell a candidate, never silently disjoint).
    """
    o1 = orientation(ax, ay, bx, by, cx, cy)
    o2 = orientation(ax, ay, bx, by, dx, dy)
    o3 = orientation(cx, cy, dx, dy, ax, ay)
    o4 = orientation(cx, cy, dx, dy, bx, by)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(cx, cy, ax, ay, bx, by):
        return True
    if o2 == 0 and on_segment(dx, dy, ax, ay, bx, by):
        return True
    if o3 == 0 and on_segment(ax, ay, cx, cy, dx, dy):
        return True
    if o4 == 0 and on_segment(bx, by, cx, cy, dx, dy):
        return True
    return False


def segment_intersection_point(ax: float, ay: float, bx: float, by: float,
                               cx: float, cy: float, dx: float, dy: float,
                               ) -> Optional[Point]:
    """Intersection point of two *properly* crossing segments, else ``None``.

    Collinear overlaps return ``None`` (there is no unique point).
    """
    r_x, r_y = bx - ax, by - ay
    s_x, s_y = dx - cx, dy - cy
    denom = r_x * s_y - r_y * s_x
    if denom == 0.0:
        return None
    t = ((cx - ax) * s_y - (cy - ay) * s_x) / denom
    u = ((cx - ax) * r_y - (cy - ay) * r_x) / denom
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return (ax + t * r_x, ay + t * r_y)
    return None


def point_segment_distance_sq(px: float, py: float, ax: float, ay: float,
                              bx: float, by: float) -> float:
    """Squared Euclidean distance from p to the closed segment a-b."""
    abx, aby = bx - ax, by - ay
    apx, apy = px - ax, py - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return apx * apx + apy * apy
    t = (apx * abx + apy * aby) / denom
    if t < 0.0:
        t = 0.0
    elif t > 1.0:
        t = 1.0
    qx = ax + t * abx - px
    qy = ay + t * aby - py
    return qx * qx + qy * qy


def point_segment_distance(px: float, py: float, ax: float, ay: float,
                           bx: float, by: float) -> float:
    """Euclidean distance from p to the closed segment a-b."""
    return math.sqrt(point_segment_distance_sq(px, py, ax, ay, bx, by))


# Cohen–Sutherland outcodes
_INSIDE, _LEFT, _RIGHT, _BOTTOM, _TOP = 0, 1, 2, 4, 8


def _outcode(rect: Rect, x: float, y: float) -> int:
    code = _INSIDE
    if x < rect.min_x:
        code |= _LEFT
    elif x > rect.max_x:
        code |= _RIGHT
    if y < rect.min_y:
        code |= _BOTTOM
    elif y > rect.max_y:
        code |= _TOP
    return code


def segment_intersects_rect(ax: float, ay: float, bx: float, by: float,
                            rect: Rect) -> bool:
    """True when any part of the closed segment a-b touches the closed rect.

    Uses Cohen–Sutherland outcode rejection with an exact fallback: trivially
    inside/outside cases answer without arithmetic, the remainder fall back
    to edge-vs-edge tests against the rect's four sides.
    """
    code_a = _outcode(rect, ax, ay)
    code_b = _outcode(rect, bx, by)
    if code_a == _INSIDE or code_b == _INSIDE:
        return True
    if code_a & code_b:
        return False
    c0, c1, c2, c3 = rect.corners()
    return (
        segments_intersect(ax, ay, bx, by, c0[0], c0[1], c1[0], c1[1])
        or segments_intersect(ax, ay, bx, by, c1[0], c1[1], c2[0], c2[1])
        or segments_intersect(ax, ay, bx, by, c2[0], c2[1], c3[0], c3[1])
        or segments_intersect(ax, ay, bx, by, c3[0], c3[1], c0[0], c0[1])
    )


def clip_segment_to_rect(ax: float, ay: float, bx: float, by: float,
                         rect: Rect) -> Optional[Tuple[Point, Point]]:
    """Liang–Barsky clip of segment a-b to the rect.

    Returns the clipped endpoints or ``None`` if no part of the segment
    lies within the rect.
    """
    dx, dy = bx - ax, by - ay
    t0, t1 = 0.0, 1.0
    for p, q in (
        (-dx, ax - rect.min_x),
        (dx, rect.max_x - ax),
        (-dy, ay - rect.min_y),
        (dy, rect.max_y - ay),
    ):
        if p == 0.0:
            if q < 0.0:
                return None
            continue
        r = q / p
        if p < 0.0:
            if r > t1:
                return None
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return None
            if r < t1:
                t1 = r
    return ((ax + t0 * dx, ay + t0 * dy), (ax + t1 * dx, ay + t1 * dy))
