"""GeoJSON readers/writers for points, polygons, and feature collections.

Used by the examples to dump coverings for visual inspection (Figure 1 of
the paper) and by the dataset generators to persist synthetic regions.
Only the subset of RFC 7946 the library needs is implemented.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from ..errors import ParseError
from .polygon import MultiPolygon, Polygon

Point = Tuple[float, float]
Geometry = Union[Point, Polygon, MultiPolygon]


def polygon_to_geojson(polygon: Polygon) -> Dict[str, Any]:
    """Polygon -> GeoJSON geometry dict (rings explicitly closed)."""
    rings = [_close(polygon.shell.vertices)]
    rings.extend(_close(h.vertices) for h in polygon.holes)
    return {"type": "Polygon", "coordinates": rings}


def multipolygon_to_geojson(multi: MultiPolygon) -> Dict[str, Any]:
    coords = []
    for polygon in multi.polygons:
        rings = [_close(polygon.shell.vertices)]
        rings.extend(_close(h.vertices) for h in polygon.holes)
        coords.append(rings)
    return {"type": "MultiPolygon", "coordinates": coords}


def geometry_to_geojson(geometry: Geometry) -> Dict[str, Any]:
    if isinstance(geometry, Polygon):
        return polygon_to_geojson(geometry)
    if isinstance(geometry, MultiPolygon):
        return multipolygon_to_geojson(geometry)
    if isinstance(geometry, tuple) and len(geometry) == 2:
        return {"type": "Point", "coordinates": [geometry[0], geometry[1]]}
    raise ParseError(f"cannot serialize {type(geometry).__name__} to GeoJSON")


def geometry_from_geojson(obj: Dict[str, Any]) -> Geometry:
    """GeoJSON geometry dict -> library geometry."""
    kind = obj.get("type")
    coords = obj.get("coordinates")
    if kind == "Point":
        if not isinstance(coords, (list, tuple)) or len(coords) < 2:
            raise ParseError("malformed Point coordinates")
        return (float(coords[0]), float(coords[1]))
    if kind == "Polygon":
        return _polygon_from_coords(coords)
    if kind == "MultiPolygon":
        if not isinstance(coords, list) or not coords:
            raise ParseError("malformed MultiPolygon coordinates")
        return MultiPolygon([_polygon_from_coords(c) for c in coords])
    raise ParseError(f"unsupported GeoJSON geometry type: {kind!r}")


def feature(geometry: Geometry, properties: Dict[str, Any] | None = None,
            ) -> Dict[str, Any]:
    """Wrap a geometry in a GeoJSON Feature."""
    return {
        "type": "Feature",
        "geometry": geometry_to_geojson(geometry),
        "properties": dict(properties or {}),
    }


def feature_collection(features: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    return {"type": "FeatureCollection", "features": list(features)}


def dump_features(path: str | Path, features: Iterable[Dict[str, Any]]) -> None:
    """Write a FeatureCollection to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(feature_collection(features), handle)


def load_polygons(path: str | Path) -> List[Polygon]:
    """Read every Polygon/MultiPolygon feature from a GeoJSON file.

    MultiPolygons are flattened into their component polygons; point
    features are skipped.
    """
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("type") != "FeatureCollection":
        raise ParseError("expected a FeatureCollection document")
    polygons: List[Polygon] = []
    for feat in doc.get("features", []):
        geom = feat.get("geometry")
        if not geom:
            continue
        if geom.get("type") == "Point":
            continue
        parsed = geometry_from_geojson(geom)
        if isinstance(parsed, Polygon):
            polygons.append(parsed)
        elif isinstance(parsed, MultiPolygon):
            polygons.extend(parsed.polygons)
    return polygons


def _close(points: Sequence[Point]) -> List[List[float]]:
    closed = [[float(x), float(y)] for x, y in points]
    if closed and closed[0] != closed[-1]:
        closed.append(list(closed[0]))
    return closed


def _polygon_from_coords(coords: Any) -> Polygon:
    if not isinstance(coords, list) or not coords:
        raise ParseError("malformed Polygon coordinates")
    rings = []
    for raw_ring in coords:
        if not isinstance(raw_ring, list) or len(raw_ring) < 4:
            raise ParseError("polygon ring needs >= 4 coordinate pairs")
        rings.append([(float(x), float(y)) for x, y, *_ in raw_ring])
    return Polygon(rings[0], rings[1:])
