"""Structural polygon validation.

The index tolerates imperfect real-world geometry (even/odd semantics
handle most slivers), but dataset generators and data importers want to
*know* when geometry is degenerate. :func:`validate_polygon` reports the
classic OGC-style issues: non-simple rings (self-intersections), holes
leaking outside the shell, and overlapping holes.

Checks are quadratic with a bounding-box prefilter — fine for validation
passes, not meant for per-query paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .polygon import Polygon, Ring
from .segment import orientation, segments_intersect


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a polygon."""

    code: str        #: machine-readable kind, e.g. "self-intersection"
    detail: str      #: human-readable context

    def __str__(self) -> str:
        return f"{self.code}: {self.detail}"


def ring_is_simple(ring: Ring) -> bool:
    """True when no two non-adjacent edges of the ring intersect."""
    edges = list(ring.edges())
    n = len(edges)
    for i in range(n):
        (ax, ay), (bx, by) = edges[i]
        min_x_i = min(ax, bx)
        max_x_i = max(ax, bx)
        min_y_i = min(ay, by)
        max_y_i = max(ay, by)
        for j in range(i + 1, n):
            if j == i + 1 or (i == 0 and j == n - 1):
                continue  # adjacent edges share a vertex by construction
            (cx, cy), (dx, dy) = edges[j]
            if (max(cx, dx) < min_x_i or min(cx, dx) > max_x_i
                    or max(cy, dy) < min_y_i or min(cy, dy) > max_y_i):
                continue
            if segments_intersect(ax, ay, bx, by, cx, cy, dx, dy):
                return False
    return True


def validate_polygon(polygon: Polygon) -> List[ValidationIssue]:
    """All structural issues of ``polygon`` (empty list = valid)."""
    issues: List[ValidationIssue] = []
    if not ring_is_simple(polygon.shell):
        issues.append(ValidationIssue(
            "self-intersection", "shell ring is not simple"
        ))
    for k, hole in enumerate(polygon.holes):
        if not ring_is_simple(hole):
            issues.append(ValidationIssue(
                "self-intersection", f"hole {k} is not simple"
            ))
        # hole must lie inside the shell: check a vertex and edge crossings
        hx, hy = hole.vertices[0]
        shell_xs, shell_ys, shell_xe, shell_ye = polygon.shell.edge_arrays
        from .pip import point_in_ring

        if not point_in_ring(hx, hy, shell_xs, shell_ys,
                             shell_xe, shell_ye):
            issues.append(ValidationIssue(
                "hole-outside-shell", f"hole {k} vertex outside the shell"
            ))
        elif _rings_cross(hole, polygon.shell):
            issues.append(ValidationIssue(
                "hole-crosses-shell", f"hole {k} crosses the shell boundary"
            ))
    for a in range(len(polygon.holes)):
        for b in range(a + 1, len(polygon.holes)):
            if _rings_cross(polygon.holes[a], polygon.holes[b]):
                issues.append(ValidationIssue(
                    "hole-overlap", f"holes {a} and {b} cross"
                ))
    return issues


def is_valid_polygon(polygon: Polygon) -> bool:
    """Convenience wrapper over :func:`validate_polygon`."""
    return not validate_polygon(polygon)


def _rings_cross(a: Ring, b: Ring) -> bool:
    """True when any edge of ``a`` properly crosses an edge of ``b``.

    Shared vertices/touching edges (common in clean partitions) do not
    count as crossings; only transversal intersections do.
    """
    if not a.bbox.intersects(b.bbox):
        return False
    for (ax, ay), (bx, by) in a.edges():
        for (cx, cy), (dx, dy) in b.edges():
            o1 = orientation(ax, ay, bx, by, cx, cy)
            o2 = orientation(ax, ay, bx, by, dx, dy)
            o3 = orientation(cx, cy, dx, dy, ax, ay)
            o4 = orientation(cx, cy, dx, dy, bx, by)
            if o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4):
                return True
    return False
