"""Distances on the sphere and local planar projections.

The precision bound of the paper is expressed in meters, while geometry is
stored in lng/lat degrees. :class:`LocalProjection` provides the standard
equirectangular local approximation used to convert between the two at
city scale (NYC spans ~0.6 degrees; the approximation error is well below
the GPS noise floor the paper cites).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..config import EARTH_RADIUS_METERS, METERS_PER_DEGREE_LAT
from .polygon import MultiPolygon, Polygon

Point = Tuple[float, float]


def haversine_meters(lng1: float, lat1: float, lng2: float, lat2: float) -> float:
    """Great-circle distance between two lng/lat points in meters."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lng2 - lng1)
    a = (math.sin(dphi / 2.0) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2)
    return 2.0 * EARTH_RADIUS_METERS * math.asin(min(1.0, math.sqrt(a)))


def meters_per_degree(lat: float) -> Tuple[float, float]:
    """``(meters per degree lng, meters per degree lat)`` at latitude."""
    return (METERS_PER_DEGREE_LAT * math.cos(math.radians(lat)),
            METERS_PER_DEGREE_LAT)


class LocalProjection:
    """Equirectangular projection anchored at a reference latitude.

    Maps lng/lat degrees to local meters: ``x = lng * k_lng``,
    ``y = lat * k_lat`` with the scale factors frozen at the anchor
    latitude. Suitable for city-scale regions.
    """

    __slots__ = ("lat0", "k_lng", "k_lat")

    def __init__(self, lat0: float):
        self.lat0 = lat0
        self.k_lng, self.k_lat = meters_per_degree(lat0)

    @staticmethod
    def for_polygon(polygon: Polygon | MultiPolygon) -> "LocalProjection":
        return LocalProjection(polygon.bbox.center[1])

    def to_xy(self, lng: float, lat: float) -> Point:
        return (lng * self.k_lng, lat * self.k_lat)

    def to_lnglat(self, x: float, y: float) -> Point:
        return (x / self.k_lng, y / self.k_lat)

    def to_xy_batch(self, lng: np.ndarray, lat: np.ndarray,
                    ) -> Tuple[np.ndarray, np.ndarray]:
        return (np.asarray(lng) * self.k_lng, np.asarray(lat) * self.k_lat)

    def degrees_to_meters(self, dlng: float, dlat: float) -> float:
        """Length in meters of a degree-space displacement vector."""
        return math.hypot(dlng * self.k_lng, dlat * self.k_lat)

    def meters_to_degrees_lng(self, meters: float) -> float:
        return meters / self.k_lng

    def meters_to_degrees_lat(self, meters: float) -> float:
        return meters / self.k_lat


def point_polygon_distance_meters(polygon: Polygon | MultiPolygon,
                                  lng: float, lat: float,
                                  projection: LocalProjection | None = None,
                                  ) -> float:
    """Distance in meters from a point to a polygon (0 when inside).

    The polygon and point are projected into local meters before measuring,
    so the result is comparable to ACT's precision bound. Used by the tests
    that empirically validate the precision guarantee. The projection is
    anchored at the query point's latitude by default, which keeps the
    measurement accurate regardless of how far the polygon's bbox center
    sits from the point.
    """
    proj = projection or LocalProjection(lat)
    polys = polygon.polygons if isinstance(polygon, MultiPolygon) else [polygon]
    best = float("inf")
    for poly in polys:
        if poly.contains(lng, lat):
            return 0.0
        px, py = proj.to_xy(lng, lat)
        for (x0, y0), (x1, y1) in poly.edges():
            ax, ay = proj.to_xy(x0, y0)
            bx, by = proj.to_xy(x1, y1)
            # inline point-segment distance in meters
            abx, aby = bx - ax, by - ay
            apx, apy = px - ax, py - ay
            denom = abx * abx + aby * aby
            t = 0.0 if denom == 0.0 else max(0.0, min(1.0, (apx * abx + apy * aby) / denom))
            dx = ax + t * abx - px
            dy = ay + t * aby - py
            d = math.hypot(dx, dy)
            if d < best:
                best = d
    return best
