"""Point-in-polygon predicates.

Two classic algorithms are provided:

* **crossing number** (even/odd rule) — the default; vectorized over the
  ring's edges with numpy so a single test is a handful of array ops, and
  batch-over-points variants for bulk refinement.
* **winding number** — used by tests as an independent oracle.

Points exactly on a ring boundary are implementation-defined (either side),
matching the paper's observation that lat/lng processing is inherently
imprecise; the ACT layer never relies on boundary-exact semantics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

Point = Tuple[float, float]


def ring_crossings(x: float, y: float, xs: np.ndarray, ys: np.ndarray,
                   xe: np.ndarray, ye: np.ndarray) -> int:
    """Number of upward/downward edge crossings of a rightward ray from (x, y).

    ``xs, ys`` are edge start coordinates, ``xe, ye`` edge ends (numpy
    arrays of equal length). Horizontal edges never count as crossings.
    Small edge sets take a scalar loop — numpy dispatch overhead exceeds
    the work below a few dozen edges.
    """
    n = xs.shape[0]
    if n <= 64:
        crossings = 0
        for i in range(n):
            y0 = ys[i]
            y1 = ye[i]
            if (y0 > y) == (y1 > y):
                continue
            t = (y - y0) / (y1 - y0)
            if xs[i] + t * (xe[i] - xs[i]) > x:
                crossings += 1
        return crossings
    cond = (ys > y) != (ye > y)
    if not cond.any():
        return 0
    xs_c = xs[cond]
    ys_c = ys[cond]
    xe_c = xe[cond]
    ye_c = ye[cond]
    t = (y - ys_c) / (ye_c - ys_c)
    x_at = xs_c + t * (xe_c - xs_c)
    return int(np.count_nonzero(x_at > x))


def point_in_ring(x: float, y: float, xs: np.ndarray, ys: np.ndarray,
                  xe: np.ndarray, ye: np.ndarray) -> bool:
    """Even/odd containment of (x, y) in a single closed ring."""
    return ring_crossings(x, y, xs, ys, xe, ye) % 2 == 1


def point_in_rings(x: float, y: float, xs: np.ndarray, ys: np.ndarray,
                   xe: np.ndarray, ye: np.ndarray) -> bool:
    """Even/odd containment across the union of a polygon's rings.

    Concatenating shell and hole edges and taking parity implements
    "inside shell, outside holes" in one pass: a point inside a hole
    crosses both the shell and the hole an odd number of times (even sum).
    """
    return ring_crossings(x, y, xs, ys, xe, ye) % 2 == 1


def points_in_rings(px: np.ndarray, py: np.ndarray, xs: np.ndarray,
                    ys: np.ndarray, xe: np.ndarray, ye: np.ndarray,
                    ) -> np.ndarray:
    """Vectorized even/odd test of many points against one edge set.

    Loops over edges, vectorizing over points; memory stays ``O(points)``.
    Returns a boolean array aligned with ``px``/``py``.
    """
    crossings = np.zeros(px.shape[0], dtype=np.int64)
    for i in range(xs.shape[0]):
        y0 = ys[i]
        y1 = ye[i]
        if y0 == y1:
            continue
        cond = (y0 > py) != (y1 > py)
        if not cond.any():
            continue
        t = (py[cond] - y0) / (y1 - y0)
        x_at = xs[i] + t * (xe[i] - xs[i])
        crossings[np.flatnonzero(cond)[x_at > px[cond]]] += 1
    return (crossings % 2) == 1


def winding_number(x: float, y: float,
                   vertices: Sequence[Point]) -> int:
    """Winding number of a closed ring (vertex list, first != last) around p.

    Positive for counter-clockwise enclosure. Non-zero means inside under
    the non-zero fill rule; used as an independent oracle in tests.
    """
    wn = 0
    n = len(vertices)
    for i in range(n):
        x0, y0 = vertices[i]
        x1, y1 = vertices[(i + 1) % n]
        if y0 <= y:
            if y1 > y:
                if _is_left(x0, y0, x1, y1, x, y) > 0:
                    wn += 1
        else:
            if y1 <= y:
                if _is_left(x0, y0, x1, y1, x, y) < 0:
                    wn -= 1
    return wn


def _is_left(x0: float, y0: float, x1: float, y1: float,
             px: float, py: float) -> float:
    return (x1 - x0) * (py - y0) - (px - x0) * (y1 - y0)
