"""Plain-text renderers for paper-style tables and series.

The benchmark harness prints the same rows/columns the paper reports
(Table I metrics, Figure 3 throughput bars, Figure 4 scaling series) so a
run's output can be placed side by side with the paper's numbers — that
comparison lives in EXPERIMENTS.md.

:func:`write_bench_json` additionally persists machine-readable
``BENCH_<name>.json`` snapshots so the perf trajectory is trackable
across PRs (CI uploads them as workflow artifacts).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .. import config


#: Accumulated rows per report table, rendered at pytest session end.
_REPORTS: "Dict[str, Dict]" = {}


def record_row(table: str, columns: Sequence[str], row: Sequence) -> None:
    """Add one row to a named report table (idempotent per identical row)."""
    entry = _REPORTS.setdefault(table, {"columns": list(columns), "rows": []})
    if list(row) not in entry["rows"]:
        entry["rows"].append(list(row))


def record_text(table: str, text: str) -> None:
    """Attach a free-form note under a report table."""
    entry = _REPORTS.setdefault(table, {"columns": None, "rows": []})
    entry.setdefault("notes", []).append(text)


def drain_reports() -> List[str]:
    """Render and clear every accumulated report."""
    out = []
    for title, entry in _REPORTS.items():
        if entry.get("columns"):
            out.append(render_table(title, entry["columns"], entry["rows"]))
        for note in entry.get("notes", []):
            out.append(note)
    _REPORTS.clear()
    return out


def write_bench_json(name: str, payload: Dict,
                     directory: Optional[Union[str, Path]] = None) -> Path:
    """Persist one benchmark's results as ``BENCH_<name>.json``.

    ``directory`` defaults to ``$REPRO_BENCH_DIR`` or the working
    directory (CI runs from the repo root and uploads ``BENCH_*.json``
    as artifacts). The payload is wrapped with the benchmark name and
    the ``REPRO_SCALE`` it ran at, so trajectories across PRs compare
    like with like.
    """
    base = Path(directory or os.environ.get("REPRO_BENCH_DIR", "."))
    path = base / f"BENCH_{name}.json"
    document = {"bench": name, "scale": config.bench_scale()}
    document.update(payload)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a title rule."""
    str_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    header = sep.join(c.rjust(w) for c, w in zip(columns, widths))
    rule = "-" * len(header)
    lines = [f"\n=== {title} ===", header, rule]
    lines.extend(
        sep.join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in str_rows
    )
    return "\n".join(lines)


def render_series(title: str, x_label: str, series: Dict[str, Dict],
                  x_values: Sequence) -> str:
    """Figure-style output: one column per x value, one row per series."""
    columns = [x_label] + [format_value(x) for x in x_values]
    rows = []
    for name, points in series.items():
        rows.append([name] + [points.get(x, float("nan")) for x in x_values])
    return render_table(title, columns, rows)


def render_comparison(title: str, baseline_name: str, baseline: float,
                      results: Dict[str, float]) -> str:
    """Throughputs plus the speedup factors the paper quotes."""
    rows: List[List] = [[baseline_name, baseline, 1.0]]
    for name, value in results.items():
        factor = value / baseline if baseline else float("inf")
        rows.append([name, value, factor])
    return render_table(title, ["variant", "M points/s", "vs baseline"],
                        rows)
