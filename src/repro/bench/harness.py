"""Benchmark workload construction and index caching.

Centralizes the datasets, point workloads, and index builds the benchmark
suite shares, so each (dataset, precision) index is built exactly once per
pytest session regardless of how many benchmarks touch it.

Workload sizes honor ``REPRO_SCALE`` (see :mod:`repro.config`): scale 1 is
calibrated for minutes-long single-machine runs, scale 10 approaches the
paper's shape (289 neighborhoods are always paper-sized; census blocks and
point counts scale).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from .. import config
from ..act.index import ACTIndex
from ..datasets import nyc, points
from ..geometry.polygon import Polygon

#: Paper dataset names in evaluation order.
DATASETS = ("boroughs", "neighborhoods", "census")

#: Paper precision presets (Table I / Figure 3 columns).
PRECISIONS = config.PRECISION_PRESETS_METERS


def dataset_polygons(name: str) -> List[Polygon]:
    """The three paper datasets at benchmark scale."""
    scale = config.bench_scale()
    if name == "boroughs":
        return nyc.boroughs()
    if name == "neighborhoods":
        return nyc.neighborhoods()
    if name == "census":
        return nyc.census_blocks(max(100, int(1000 * scale)))
    raise ValueError(f"unknown dataset {name!r}")


def workload(num_points: int, seed: int = 123) -> Tuple[np.ndarray, np.ndarray]:
    """Taxi-like points at benchmark scale."""
    return points.taxi_points(config.bench_points(num_points), seed=seed)


@dataclass
class IndexCache:
    """Session-wide cache of built indexes and their build stats."""

    _indexes: Dict[Tuple[str, float], ACTIndex] = field(default_factory=dict)
    build_seconds: Dict[Tuple[str, float], float] = field(default_factory=dict)

    def get(self, dataset: str, precision: float) -> ACTIndex:
        key = (dataset, precision)
        if key not in self._indexes:
            polygons = dataset_polygons(dataset)
            start = time.perf_counter()
            index = ACTIndex.build(polygons, precision_meters=precision)
            self.build_seconds[key] = time.perf_counter() - start
            self._indexes[key] = index
        return self._indexes[key]

    def evict(self, dataset: str, precision: float) -> None:
        self._indexes.pop((dataset, precision), None)


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def throughput_mpts(num_points: int, seconds: float) -> float:
    """Million points per second (the paper's throughput unit)."""
    return num_points / seconds / 1e6 if seconds > 0 else float("inf")
