"""Benchmark harness shared by the ``benchmarks/`` suite."""

from .harness import (
    DATASETS,
    PRECISIONS,
    IndexCache,
    dataset_polygons,
    throughput_mpts,
    time_callable,
    workload,
)
from .reporting import (
    render_comparison,
    render_series,
    render_table,
    write_bench_json,
)

__all__ = [
    "DATASETS",
    "PRECISIONS",
    "IndexCache",
    "dataset_polygons",
    "throughput_mpts",
    "time_callable",
    "workload",
    "render_comparison",
    "render_series",
    "render_table",
    "write_bench_json",
]
