"""Visualization helpers (dependency-free SVG)."""

from .svg import (
    COVERING_STYLE,
    INTERIOR_STYLE,
    POINT_STYLE,
    POLYGON_STYLE,
    SvgCanvas,
    render_covering,
)

__all__ = [
    "COVERING_STYLE",
    "INTERIOR_STYLE",
    "POINT_STYLE",
    "POLYGON_STYLE",
    "SvgCanvas",
    "render_covering",
]
