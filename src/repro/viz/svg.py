"""Dependency-free SVG rendering of polygons and cell coverings.

Regenerates the paper's Figure 1 as a standalone SVG: polygons with
their covering (blue) and interior (green) cells. No matplotlib — the
renderer emits SVG primitives directly, so it works in the offline
reproduction environment and output drops straight into a browser.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..geometry.bbox import Rect
from ..geometry.polygon import Polygon

#: Figure-1 palette: covering cells blue, interior cells green.
COVERING_STYLE = {"fill": "#4a90d9", "fill_opacity": 0.45,
                  "stroke": "#2b6cb0", "stroke_width": 0.15}
INTERIOR_STYLE = {"fill": "#48a868", "fill_opacity": 0.55,
                  "stroke": "#2f855a", "stroke_width": 0.15}
POLYGON_STYLE = {"fill": "none", "fill_opacity": 1.0,
                 "stroke": "#1a202c", "stroke_width": 0.6}
POINT_STYLE = {"fill": "#e53e3e", "fill_opacity": 0.9,
               "stroke": "none", "stroke_width": 0.0}


class SvgCanvas:
    """Accumulates shapes in lng/lat space and renders one SVG document."""

    def __init__(self, bounds: Rect, width_px: int = 900,
                 margin_fraction: float = 0.03):
        margin = max(bounds.width, bounds.height) * margin_fraction
        self.bounds = bounds.expanded(margin)
        self.width_px = width_px
        self.height_px = max(
            1, int(width_px * self.bounds.height / self.bounds.width)
        )
        self._sx = width_px / self.bounds.width
        self._sy = self.height_px / self.bounds.height
        self._shapes: List[str] = []

    # ------------------------------------------------------------------
    # Coordinate mapping (SVG y grows downward)
    # ------------------------------------------------------------------
    def to_px(self, x: float, y: float) -> Tuple[float, float]:
        return ((x - self.bounds.min_x) * self._sx,
                (self.bounds.max_y - y) * self._sy)

    # ------------------------------------------------------------------
    # Shapes
    # ------------------------------------------------------------------
    def add_rect(self, rect: Rect, style: dict) -> None:
        x0, y1 = self.to_px(rect.min_x, rect.min_y)
        x1, y0 = self.to_px(rect.max_x, rect.max_y)
        self._shapes.append(
            f'<rect x="{x0:.2f}" y="{y0:.2f}" '
            f'width="{x1 - x0:.2f}" height="{y1 - y0:.2f}" '
            f"{_style_attrs(style)}/>"
        )

    def add_polygon(self, polygon: Polygon, style: dict) -> None:
        parts = [_ring_path(self, polygon.shell.vertices)]
        parts.extend(_ring_path(self, h.vertices) for h in polygon.holes)
        self._shapes.append(
            f'<path d="{" ".join(parts)}" fill-rule="evenodd" '
            f"{_style_attrs(style)}/>"
        )

    def add_point(self, x: float, y: float, radius_px: float = 2.0,
                  style: Optional[dict] = None) -> None:
        px, py = self.to_px(x, y)
        self._shapes.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{radius_px:.2f}" '
            f"{_style_attrs(style or POINT_STYLE)}/>"
        )

    def add_label(self, x: float, y: float, text: str,
                  size_px: int = 12) -> None:
        px, py = self.to_px(x, y)
        self._shapes.append(
            f'<text x="{px:.2f}" y="{py:.2f}" font-size="{size_px}" '
            f'font-family="sans-serif" fill="#1a202c">{_escape(text)}</text>'
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        body = "\n  ".join(self._shapes)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">\n'
            f'  <rect width="100%" height="100%" fill="#ffffff"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_svg(), encoding="utf-8")


def render_covering(polygons: Sequence[Polygon], grid,
                    boundary_cells: Iterable[int],
                    interior_cells: Iterable[int],
                    width_px: int = 900) -> SvgCanvas:
    """Figure-1-style rendering: cells under their polygons.

    ``grid`` supplies ``cell_rect``; cells are drawn first so polygon
    outlines stay visible on top.
    """
    bounds = polygons[0].bbox
    for polygon in polygons[1:]:
        bounds = bounds.union(polygon.bbox)
    canvas = SvgCanvas(bounds, width_px=width_px)
    for cell in boundary_cells:
        canvas.add_rect(grid.cell_rect(cell), COVERING_STYLE)
    for cell in interior_cells:
        canvas.add_rect(grid.cell_rect(cell), INTERIOR_STYLE)
    for polygon in polygons:
        canvas.add_polygon(polygon, POLYGON_STYLE)
    return canvas


def _ring_path(canvas: SvgCanvas, vertices) -> str:
    points = [canvas.to_px(x, y) for x, y in vertices]
    head = f"M {points[0][0]:.2f} {points[0][1]:.2f}"
    rest = " ".join(f"L {x:.2f} {y:.2f}" for x, y in points[1:])
    return f"{head} {rest} Z"


def _style_attrs(style: dict) -> str:
    return (
        f'fill="{style.get("fill", "none")}" '
        f'fill-opacity="{style.get("fill_opacity", 1.0)}" '
        f'stroke="{style.get("stroke", "none")}" '
        f'stroke-width="{style.get("stroke_width", 1.0)}"'
    )


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))
