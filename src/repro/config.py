"""Global constants and configuration knobs.

Centralizes the physical constants, paper-derived presets, and environment
driven scale factors used across the library and the benchmark harness.
"""

from __future__ import annotations

import os

#: Mean Earth radius in meters (IUGG mean radius R1).
EARTH_RADIUS_METERS = 6_371_008.8

#: Earth circumference in meters, used by grid level metrics.
EARTH_CIRCUMFERENCE_METERS = 2.0 * 3.141592653589793 * EARTH_RADIUS_METERS

#: Meters per degree of latitude (spherical approximation).
METERS_PER_DEGREE_LAT = EARTH_CIRCUMFERENCE_METERS / 360.0

#: The paper evaluates ACT at these precision bounds (Table I, Figure 3).
PRECISION_PRESETS_METERS = (60.0, 15.0, 4.0)

#: Maximum quadtree depth, mirroring S2's 30 levels ("each cm^2 on Earth").
MAX_LEVEL = 30

#: Default radix-tree fanout from the paper (8 bits per trie level).
DEFAULT_FANOUT = 256

#: NYC-like region used by the synthetic datasets (west, south, east, north).
NYC_BOUNDS = (-74.30, 40.45, -73.65, 40.95)

#: Dataset cardinalities from the paper's evaluation section.
PAPER_NUM_BOROUGHS = 5
PAPER_NUM_NEIGHBORHOODS = 289
PAPER_NUM_CENSUS_BLOCKS = 39_184


def bench_scale() -> float:
    """Return the benchmark scale factor from ``REPRO_SCALE`` (default 1.0).

    Scale 1.0 targets minutes-long CI runs; 10.0 approaches paper-shaped
    workload sizes. Generators multiply point counts (and census-block
    counts) by this factor.
    """
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return value if value > 0 else 1.0


def bench_points(base: int) -> int:
    """Scale a benchmark point count by :func:`bench_scale`."""
    return max(1, int(base * bench_scale()))
