"""Join result containers and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class JoinStats:
    """Instrumentation of one join run."""

    num_points: int = 0
    num_true_hits: int = 0
    num_candidate_refs: int = 0
    num_refined: int = 0          #: PIP tests actually executed
    num_result_pairs: int = 0
    seconds: float = 0.0

    @property
    def throughput_mpts(self) -> float:
        """Throughput in million points per second (the paper's unit)."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.num_points / self.seconds / 1e6

    @property
    def true_hit_ratio(self) -> float:
        """Fraction of result pairs resolved without refinement."""
        if self.num_result_pairs == 0:
            return 1.0
        return self.num_true_hits / self.num_result_pairs

    def merged(self, other: "JoinStats") -> "JoinStats":
        return JoinStats(
            num_points=self.num_points + other.num_points,
            num_true_hits=self.num_true_hits + other.num_true_hits,
            num_candidate_refs=(self.num_candidate_refs
                                + other.num_candidate_refs),
            num_refined=self.num_refined + other.num_refined,
            num_result_pairs=self.num_result_pairs + other.num_result_pairs,
            seconds=self.seconds + other.seconds,
        )


@dataclass
class JoinResult:
    """Counts per polygon plus run statistics."""

    counts: np.ndarray
    stats: JoinStats = field(default_factory=JoinStats)

    @property
    def total_pairs(self) -> int:
        return int(self.counts.sum())

    def top_k(self, k: int = 10) -> Dict[int, int]:
        """The ``k`` most-hit polygons as ``{polygon_id: count}``."""
        order = np.argsort(self.counts)[::-1][:k]
        return {int(pid): int(self.counts[pid]) for pid in order
                if self.counts[pid] > 0}
