"""The approximate geospatial join (the paper's headline operator).

Joins a batch of points against the indexed polygons **without any
refinement phase**: every trie match — true hit or candidate — counts as
a join pair. False-positive pairs are guaranteed to be within the index's
precision bound of their polygon. Execution is fully columnar through
the :class:`~repro.join.executor.JoinExecutor`: one batch descent, one
decode pass producing both true-hit and candidate counts.
"""

from __future__ import annotations

import time
from typing import Iterator, Tuple

import numpy as np

from ..act.index import ACTIndex
from .result import JoinResult, JoinStats


class ApproximateJoin:
    """Point-batch join over an :class:`~repro.act.index.ACTIndex`."""

    def __init__(self, index: ACTIndex):
        self.index = index
        self.executor = index.executor

    def join(self, lngs: np.ndarray, lats: np.ndarray) -> JoinResult:
        """Count join pairs per polygon over the batch."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        start = time.perf_counter()
        entries = self.executor.entries(lngs, lats)
        true_counts, cand_counts = self.index.core.hit_counts(
            entries, self.index.num_polygons)
        counts = true_counts + cand_counts
        elapsed = time.perf_counter() - start

        stats = JoinStats(
            num_points=lngs.shape[0],
            num_true_hits=int(true_counts.sum()),
            num_candidate_refs=int(cand_counts.sum()),
            num_refined=0,
            num_result_pairs=int(counts.sum()),
            seconds=elapsed,
        )
        return JoinResult(counts, stats)

    def join_pairs(self, lngs: np.ndarray, lats: np.ndarray,
                   ) -> Iterator[Tuple[int, int]]:
        """Yield ``(point_index, polygon_id)`` join pairs (approximate)."""
        point_idx, polygon_ids = self.executor.pairs(lngs, lats,
                                                     exact=False)
        yield from zip(point_idx.tolist(), polygon_ids.tolist())
