"""Classic filter-and-refine join (the technique ACT improves on).

Phase 1 probes a filter index (R-tree over MBRs by default) for candidate
polygons; phase 2 refines every candidate with an exact point-in-polygon
test. This is the decades-old baseline the paper's introduction describes,
and the operator ACT's true-hit filtering + precision-bounded candidates
render unnecessary.

Refinement is executed the same way the columnar engine refines ACT
candidates: all candidate pairs run through one packed-edge
crossing-number pass (:class:`~repro.geometry.edge_table.
PackedEdgeTable`, grouped per-polygon fallback for huge fan-out). Only
the probe phase stays per point (the filter indexes are inherently
scalar probes). The :class:`~repro.join.result.JoinStats` accounting is
preserved across the rewrites: ``num_refined`` still counts every PIP
test and ``num_result_pairs`` every surviving pair.

The filter index is pluggable so the ablation benchmarks can compare
refinement cost across filters (plain MBR, interior-rectangle, fixed grid,
ACT-with-refinement).
"""

from __future__ import annotations

import time
from typing import List, Protocol, Sequence

import numpy as np

from ..act.index import ACTIndex
from ..baselines.rtree import RStarTree
from ..geometry.edge_table import PackedEdgeTable
from ..geometry.polygon import Polygon
from .executor import refine_pairs_packed
from .result import JoinResult, JoinStats


class PointFilter(Protocol):
    """Anything that maps a point to candidate polygon ids."""

    def query_point(self, x: float, y: float) -> List[int]:  # pragma: no cover
        ...


class FilterRefineJoin:
    """Two-phase exact join with a pluggable filter index."""

    def __init__(self, polygons: Sequence[Polygon],
                 filter_index: PointFilter | None = None):
        self.polygons = list(polygons)
        self.filter_index = filter_index or RStarTree.build(
            [p.bbox for p in self.polygons]
        )
        self._edge_table: PackedEdgeTable | None = None

    @property
    def edge_table(self) -> PackedEdgeTable:
        """Packed refinement engine over the polygon set (lazy)."""
        if self._edge_table is None:
            self._edge_table = PackedEdgeTable.from_polygons(self.polygons)
        return self._edge_table

    def query(self, lng: float, lat: float) -> List[int]:
        """Exact polygon ids for one point (filter, then refine)."""
        return [pid for pid in self.filter_index.query_point(lng, lat)
                if self.polygons[pid].contains(lng, lat)]

    def join(self, lngs: np.ndarray, lats: np.ndarray) -> JoinResult:
        """Exact per-polygon counts with full refinement accounting."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        query = self.filter_index.query_point
        start = time.perf_counter()
        # probe phase: the filter index answers one point at a time
        point_parts: List[int] = []
        id_parts: List[int] = []
        for k, (x, y) in enumerate(zip(lngs.tolist(), lats.tolist())):
            for pid in query(x, y):
                point_parts.append(k)
                id_parts.append(pid)
        point_idx = np.asarray(point_parts, dtype=np.int64)
        polygon_ids = np.asarray(id_parts, dtype=np.int64)
        # refine phase: one packed-edge pass over every candidate pair
        inside = refine_pairs_packed(self.edge_table, self.polygons,
                                     point_idx, polygon_ids, lngs, lats)
        counts = np.bincount(polygon_ids[inside],
                             minlength=len(self.polygons))
        elapsed = time.perf_counter() - start
        refined = int(point_idx.shape[0])
        stats = JoinStats(
            num_points=lngs.shape[0],
            num_true_hits=0,
            num_candidate_refs=refined,
            num_refined=refined,
            num_result_pairs=int(np.count_nonzero(inside)),
            seconds=elapsed,
        )
        return JoinResult(counts, stats)


class ACTExactJoin:
    """Exact join driven by ACT: true hits skip refinement.

    The hybrid the paper suggests for memory-constrained builds — ACT as
    the filter, with PIP tests only on candidate references. Against
    :class:`FilterRefineJoin` this quantifies how many refinements the
    interior coverings eliminate.
    """

    def __init__(self, index: ACTIndex):
        self.index = index
        self.executor = index.executor

    def join(self, lngs: np.ndarray, lats: np.ndarray) -> JoinResult:
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        start = time.perf_counter()
        entries = self.executor.entries(lngs, lats)
        counts, true_pairs, refined = self.executor.refined_counts(
            entries, lngs, lats)
        elapsed = time.perf_counter() - start
        stats = JoinStats(
            num_points=lngs.shape[0],
            num_true_hits=true_pairs,
            num_candidate_refs=refined,
            num_refined=refined,
            num_result_pairs=int(counts.sum()),
            seconds=elapsed,
        )
        return JoinResult(counts, stats)
