"""Classic filter-and-refine join (the technique ACT improves on).

Phase 1 probes a filter index (R-tree over MBRs by default) for candidate
polygons; phase 2 refines every candidate with an exact point-in-polygon
test. This is the decades-old baseline the paper's introduction describes,
and the operator ACT's true-hit filtering + precision-bounded candidates
render unnecessary.

The filter index is pluggable so the ablation benchmarks can compare
refinement cost across filters (plain MBR, interior-rectangle, fixed grid,
ACT-with-refinement).
"""

from __future__ import annotations

import time
from typing import List, Protocol, Sequence

import numpy as np

from ..act.index import ACTIndex
from ..baselines.rtree import RStarTree
from ..geometry.polygon import Polygon
from .result import JoinResult, JoinStats


class PointFilter(Protocol):
    """Anything that maps a point to candidate polygon ids."""

    def query_point(self, x: float, y: float) -> List[int]:  # pragma: no cover
        ...


class FilterRefineJoin:
    """Two-phase exact join with a pluggable filter index."""

    def __init__(self, polygons: Sequence[Polygon],
                 filter_index: PointFilter | None = None):
        self.polygons = list(polygons)
        self.filter_index = filter_index or RStarTree.build(
            [p.bbox for p in self.polygons]
        )

    def query(self, lng: float, lat: float) -> List[int]:
        """Exact polygon ids for one point (filter, then refine)."""
        return [pid for pid in self.filter_index.query_point(lng, lat)
                if self.polygons[pid].contains(lng, lat)]

    def join(self, lngs: np.ndarray, lats: np.ndarray) -> JoinResult:
        """Exact per-polygon counts with full refinement accounting."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        counts = np.zeros(len(self.polygons), dtype=np.int64)
        refined = 0
        pairs = 0
        query = self.filter_index.query_point
        contains = [p.contains for p in self.polygons]
        start = time.perf_counter()
        for x, y in zip(lngs.tolist(), lats.tolist()):
            for pid in query(x, y):
                refined += 1
                if contains[pid](x, y):
                    counts[pid] += 1
                    pairs += 1
        elapsed = time.perf_counter() - start
        stats = JoinStats(
            num_points=lngs.shape[0],
            num_true_hits=0,
            num_candidate_refs=refined,
            num_refined=refined,
            num_result_pairs=pairs,
            seconds=elapsed,
        )
        return JoinResult(counts, stats)


class ACTExactJoin:
    """Exact join driven by ACT: true hits skip refinement.

    The hybrid the paper suggests for memory-constrained builds — ACT as
    the filter, with PIP tests only on candidate references. Against
    :class:`FilterRefineJoin` this quantifies how many refinements the
    interior coverings eliminate.
    """

    def __init__(self, index: ACTIndex):
        self.index = index

    def join(self, lngs: np.ndarray, lats: np.ndarray) -> JoinResult:
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        start = time.perf_counter()
        entries = self.index.lookup_batch(lngs, lats)
        vect = self.index.vectorized
        counts = vect.count_hits(entries, self.index.num_polygons,
                                 include_candidates=False)
        true_pairs = int(counts.sum())
        point_idx, polygon_ids = vect.candidate_pairs(entries)
        refined = int(point_idx.shape[0])
        if refined:
            order = np.argsort(polygon_ids, kind="stable")
            point_idx = point_idx[order]
            polygon_ids = polygon_ids[order]
            boundaries = np.flatnonzero(np.diff(polygon_ids)) + 1
            for chunk_ids, chunk_pts in zip(
                np.split(polygon_ids, boundaries),
                np.split(point_idx, boundaries),
            ):
                pid = int(chunk_ids[0])
                inside = self.index.polygons[pid].contains_batch(
                    lngs[chunk_pts], lats[chunk_pts]
                )
                counts[pid] += int(np.count_nonzero(inside))
        elapsed = time.perf_counter() - start
        stats = JoinStats(
            num_points=lngs.shape[0],
            num_true_hits=true_pairs,
            num_candidate_refs=refined,
            num_refined=refined,
            num_result_pairs=int(counts.sum()),
            seconds=elapsed,
        )
        return JoinResult(counts, stats)
