"""Join operators: approximate (ACT), exact (filter+refine), streaming,
aggregation, and multi-worker scaling."""

from .aggregate import CountAggregator, count_points_per_polygon, count_stream
from .approximate import ApproximateJoin
from .filter_refine import ACTExactJoin, FilterRefineJoin
from .parallel import (
    ScalingPoint,
    fork_available,
    parallel_count,
    parallel_counts_array,
    scaling_sweep,
)
from .result import JoinResult, JoinStats
from .streaming import StreamingJoin

__all__ = [
    "CountAggregator",
    "count_points_per_polygon",
    "count_stream",
    "ApproximateJoin",
    "ACTExactJoin",
    "FilterRefineJoin",
    "ScalingPoint",
    "fork_available",
    "parallel_count",
    "parallel_counts_array",
    "scaling_sweep",
    "JoinResult",
    "JoinStats",
    "StreamingJoin",
]
