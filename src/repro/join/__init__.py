"""Join operators: approximate (ACT), exact (filter+refine), streaming,
aggregation, and multi-worker scaling — all executing through the
columnar :class:`~repro.join.executor.JoinExecutor`."""

from .aggregate import CountAggregator, count_points_per_polygon, count_stream
from .approximate import ApproximateJoin
from .executor import JoinExecutor, refine_pairs
from .filter_refine import ACTExactJoin, FilterRefineJoin
from .parallel import (
    ScalingPoint,
    fork_available,
    parallel_count,
    parallel_counts_array,
    scaling_sweep,
)
from .result import JoinResult, JoinStats
from .streaming import StreamingJoin

__all__ = [
    "CountAggregator",
    "count_points_per_polygon",
    "count_stream",
    "ApproximateJoin",
    "ACTExactJoin",
    "FilterRefineJoin",
    "JoinExecutor",
    "refine_pairs",
    "ScalingPoint",
    "fork_available",
    "parallel_count",
    "parallel_counts_array",
    "scaling_sweep",
    "JoinResult",
    "JoinStats",
    "StreamingJoin",
]
