"""The columnar join engine every join operator routes through.

One :class:`JoinExecutor` binds an index's grid, :class:`~repro.act.core.
ACTCore`, and polygons, and executes the whole join pipeline in numpy:

1. **descent** — point batch -> leaf cells -> encoded entries, one
   level-synchronous batch walk over the flat node pool;
2. **decode** — per-polygon true/candidate counts or explicit
   ``(point, polygon)`` pairs, CSR-gathered for lookup-table entries;
3. **refinement** (exact mode) — candidate pairs evaluated by the
   packed-edge engine (:class:`~repro.geometry.edge_table.
   PackedEdgeTable`): one vectorized crossing-number pass over all
   pairs' edges, no Python per pair or per polygon.

Descent gathers are cache-hostile in arrival order, so large batches
are sorted by cell id before walking the node pool (same face, then
same subtree, land adjacent — the access pattern the paper credits for
ACT's cache behaviour) and unpermuted on output.

Refinement keeps the previous grouped-by-polygon path
(:func:`refine_pairs`) as a fallback for pairs whose polygon alone
overflows the packed kernel's chunk budget — grouped refinement is
``O(points)`` memory regardless of edge count.

The approximate join (:class:`~repro.join.approximate.ApproximateJoin`),
the ACT exact join (:class:`~repro.join.filter_refine.ACTExactJoin`),
the streaming and multiprocess operators, and ``ACTIndex.count_points``
all dispatch here, so there is exactly one hot path to keep fast.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from ..geometry.edge_table import PackedEdgeTable
from ..geometry.polygon import Polygon

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..act.index import ACTIndex

#: Batches at or above this many points descend in cell-sorted order.
#: Below it the argsort overhead exceeds any locality win.
SORT_DESCENT_MIN_BATCH = 4096

#: Candidate batches at or above this many pairs are deduplicated
#: before refinement. Below it the unique-rows pass costs more than
#: the duplicate PIP tests it could save.
DEDUP_MIN_PAIRS = 64


def dedupe_pairs(point_idx: np.ndarray, polygon_ids: np.ndarray,
                 lngs: np.ndarray, lats: np.ndarray,
                 ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """``(first_occurrence, inverse)`` over unique candidate pairs.

    Skewed batches repeat coordinates (every taxi pickup at one
    terminal lands in the same cell), so the candidate set re-tests
    identical ``(point, polygon)`` work. Two pairs are duplicates only
    when their *coordinates* are bit-equal (same ``float64`` payload
    for lng and lat) and they name the same polygon — cell-level
    equality is not enough, because the PIP verdict depends on the
    actual point, not its cell. Keys are the raw coordinate bit
    patterns, so ``-0.0``/``0.0`` and NaN payloads conservatively stay
    distinct and the verdict scatter is exact.

    Returns ``None`` when every pair is already unique (the caller
    skips the scatter), else indices such that ``verdicts[inverse]``
    rebuilds the full pair order from the unique refinement.
    """
    keys = np.empty((point_idx.shape[0], 3), dtype=np.uint64)
    # fancy indexing materializes contiguous float64 gathers, so the
    # uint64 view is just a reinterpret of each coordinate's bits
    keys[:, 0] = lngs[point_idx].view(np.uint64)
    keys[:, 1] = lats[point_idx].view(np.uint64)
    keys[:, 2] = polygon_ids.astype(np.uint64, copy=False)
    _, first, inverse = np.unique(keys, axis=0, return_index=True,
                                  return_inverse=True)
    if first.shape[0] == point_idx.shape[0]:
        return None
    return first, inverse.reshape(-1)


def refine_pairs(polygons: Sequence[Polygon], point_idx: np.ndarray,
                 polygon_ids: np.ndarray, lngs: np.ndarray,
                 lats: np.ndarray) -> np.ndarray:
    """PIP verdict per ``(point, polygon)`` candidate pair.

    Pairs are grouped by polygon so each polygon evaluates one
    ``contains_batch`` over all of its candidate points. Returns a
    boolean mask aligned with the input pair order.
    """
    inside = np.zeros(point_idx.shape[0], dtype=bool)
    if point_idx.size == 0:
        return inside
    order = np.argsort(polygon_ids, kind="stable")
    sorted_ids = polygon_ids[order]
    sorted_pts = point_idx[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    for chunk_pos, chunk_ids, chunk_pts in zip(
        np.split(order, boundaries),
        np.split(sorted_ids, boundaries),
        np.split(sorted_pts, boundaries),
    ):
        polygon = polygons[int(chunk_ids[0])]
        inside[chunk_pos] = polygon.contains_batch(
            lngs[chunk_pts], lats[chunk_pts]
        )
    return inside


def refine_pairs_packed(table: PackedEdgeTable,
                        polygons: Sequence[Polygon],
                        point_idx: np.ndarray, polygon_ids: np.ndarray,
                        lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
    """Packed-edge refinement with a grouped fallback for huge fan-out.

    Pairs whose polygon alone exceeds the table's per-chunk edge budget
    would make the expanded ``(pair, edge)`` gather as large as the
    polygon itself per pair; those few pairs take the grouped
    per-polygon path (``O(points)`` memory) while everything else runs
    through the vectorized kernel. Verdicts are bit-identical either
    way.
    """
    if point_idx.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    huge = table.edge_counts(polygon_ids) > table.chunk_edges
    if not huge.any():
        return table.refine(point_idx, polygon_ids, lngs, lats)
    inside = np.zeros(point_idx.shape[0], dtype=bool)
    small = ~huge
    inside[small] = table.refine(point_idx[small], polygon_ids[small],
                                 lngs, lats)
    inside[huge] = refine_pairs(polygons, point_idx[huge],
                                polygon_ids[huge], lngs, lats)
    return inside


class JoinExecutor:
    """Columnar execution of point-polygon joins over one index."""

    __slots__ = ("index", "core", "grid", "polygons", "sorted_descent",
                 "_edge_table", "_edge_table_lock")

    def __init__(self, index: "ACTIndex", sorted_descent: bool = True):
        self.index = index
        self.core = index.core
        self.grid = index.grid
        self.polygons = index.polygons
        self.sorted_descent = sorted_descent
        self._edge_table: Optional[PackedEdgeTable] = None
        self._edge_table_lock = threading.Lock()

    @property
    def num_polygons(self) -> int:
        return len(self.polygons)

    @property
    def edge_table(self) -> PackedEdgeTable:
        """The packed refinement engine, built lazily from the polygons.

        Built once under a lock: the serve front is threaded, and an
        O(total-edges) build racing across concurrent first requests
        would be duplicated work (the serve registry pre-warms this at
        materialization, so requests normally never pay it).
        """
        if self._edge_table is None:
            with self._edge_table_lock:
                if self._edge_table is None:
                    self._edge_table = PackedEdgeTable.from_polygons(
                        self.polygons)
        return self._edge_table

    def refine_pairs(self, point_idx: np.ndarray, polygon_ids: np.ndarray,
                     lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """PIP verdict per candidate pair via the packed-edge engine.

        Large batches are deduplicated first (:func:`dedupe_pairs`):
        each unique ``(coordinate bits, polygon)`` pair is refined
        once and its verdict broadcast back, so skewed workloads stop
        paying for identical PIP tests. Verdicts are bit-identical to
        the undeduplicated path by construction — duplicates share the
        exact inputs, and crossing-number evaluation is deterministic.
        """
        if point_idx.shape[0] >= DEDUP_MIN_PAIRS:
            unique = dedupe_pairs(point_idx, polygon_ids, lngs, lats)
            if unique is not None:
                first, inverse = unique
                inside = refine_pairs_packed(
                    self.edge_table, self.polygons, point_idx[first],
                    polygon_ids[first], lngs, lats)
                return inside[inverse]
        return refine_pairs_packed(self.edge_table, self.polygons,
                                   point_idx, polygon_ids, lngs, lats)

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------
    def entries(self, lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Encoded entry per point (the batch descent)."""
        cells = self.grid.leaf_cells_batch(
            np.asarray(lngs, dtype=np.float64),
            np.asarray(lats, dtype=np.float64),
        )
        sort = (self.sorted_descent
                and cells.shape[0] >= SORT_DESCENT_MIN_BATCH)
        return self.core.lookup_entries(cells, sort_by_cell=sort)

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def count_points(self, lngs: np.ndarray, lats: np.ndarray,
                     exact: bool = False, trace=None) -> np.ndarray:
        """Per-polygon counts (the paper's evaluation workload).

        ``trace`` (a sampled request's :class:`~repro.obs.trace.Trace`)
        receives per-stage stamps: ``descent`` (cell mapping + trie
        walk), ``decode``, and — in exact mode — ``refine``.
        """
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        entries = self.entries(lngs, lats)
        if trace is not None:
            trace.stamp("descent")
        if not exact:
            true_counts, cand_counts = self.core.hit_counts(
                entries, self.num_polygons)
            if trace is not None:
                trace.stamp("decode")
            return true_counts + cand_counts
        counts, _, _ = self.refined_counts(entries, lngs, lats,
                                           trace=trace)
        return counts

    def refined_counts(self, entries: np.ndarray, lngs: np.ndarray,
                       lats: np.ndarray, trace=None,
                       ) -> Tuple[np.ndarray, int, int]:
        """Exact per-polygon counts for pre-computed entries.

        True hits are counted without refinement; candidate pairs are
        refined by the packed-edge engine. Returns ``(counts,
        num_true_pairs, num_refined)`` where ``num_refined`` is the
        number of PIP tests executed.
        """
        counts = self.core.count_hits(entries, self.num_polygons,
                                      include_candidates=False)
        true_pairs = int(counts.sum())
        point_idx, polygon_ids = self.core.candidate_pairs(entries)
        refined = int(point_idx.shape[0])
        if trace is not None:
            trace.stamp("decode")
        if refined:
            inside = self.refine_pairs(point_idx, polygon_ids, lngs, lats)
            counts += np.bincount(polygon_ids[inside],
                                  minlength=self.num_polygons)
        if trace is not None:
            trace.stamp("refine")
        return counts, true_pairs, refined

    # ------------------------------------------------------------------
    # Pair extraction
    # ------------------------------------------------------------------
    def pairs(self, lngs: np.ndarray, lats: np.ndarray,
              exact: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """``(point_indices, polygon_ids)`` join pairs for a batch.

        Approximate mode emits every reference; exact mode keeps true
        hits and refines candidates through the packed-edge engine.
        """
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        entries = self.entries(lngs, lats)
        true_pts, true_ids = self.core.pairs(entries, want_true=True)
        cand_pts, cand_ids = self.core.pairs(entries, want_true=False)
        if exact and cand_pts.size:
            inside = self.refine_pairs(cand_pts, cand_ids, lngs, lats)
            cand_pts = cand_pts[inside]
            cand_ids = cand_ids[inside]
        return (np.concatenate([true_pts, cand_pts]),
                np.concatenate([true_ids, cand_ids]))
