"""Multi-worker scaling of the join (the paper's Figure 4, adapted).

The paper scales ACT across 28 cores / 56 hyperthreads with C++ threads
and reports near-linear scaling up to 4.3 B points/s. Python threads
cannot show that because of the GIL, so this module scales with
``multiprocessing`` **fork** workers instead: the index is built once in
the parent and inherited copy-on-write, points are split into per-worker
slices, and each worker runs the vectorized join on its slice (DESIGN.md
documents this substitution).

The parent binds every lazily-built artifact the hot path needs — the
columnar executor and, for exact joins, the packed edge table — *before*
forking, so children inherit them built instead of each constructing its
own copy. Indexes loaded with ``load_index(..., mmap_mode="r")`` compose
particularly well here: the node pool is a file-backed mapping, so
workers share its pages through the page cache without any process ever
re-reading the ``.npz``.

On non-fork platforms the sweep falls back to serial execution and says
so in its results.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..act.index import ACTIndex

#: Worker globals inherited through fork (never pickled).
_SHARED: dict = {}


def _worker_count(bounds: tuple) -> np.ndarray:
    start, stop = bounds
    index: ACTIndex = _SHARED["index"]
    # the columnar engine is shared copy-on-write through fork
    return index.executor.count_points(
        _SHARED["lngs"][start:stop],
        _SHARED["lats"][start:stop],
        exact=_SHARED["exact"],
    )


@dataclass
class ScalingPoint:
    """One measurement of the scaling sweep."""

    workers: int
    seconds: float
    num_points: int

    @property
    def throughput_mpts(self) -> float:
        return self.num_points / self.seconds / 1e6 if self.seconds else 0.0


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _bind_shared(index: ACTIndex, lngs: np.ndarray, lats: np.ndarray,
                 exact: bool) -> None:
    """Stage the fork-inherited state, with hot-path artifacts pre-built.

    The pre-fork binding discipline is shared with the serving fleet:
    :meth:`~repro.act.index.ACTIndex.prewarm` builds the executor (and,
    for exact joins, the packed edge table) in the parent so every
    worker inherits them copy-on-write instead of redoing the work
    ``workers`` times after the fork.
    """
    index.prewarm(edge_table=exact)
    _SHARED.update(index=index, lngs=lngs, lats=lats, exact=exact)


def parallel_count(index: ACTIndex, lngs: np.ndarray, lats: np.ndarray,
                   workers: int, exact: bool = False,
                   ) -> ScalingPoint:
    """Count points per polygon using ``workers`` processes.

    Returns the timing; the counts themselves are validated against the
    serial path in tests (they are summed across workers).
    """
    lngs = np.asarray(lngs, dtype=np.float64)
    lats = np.asarray(lats, dtype=np.float64)
    n = lngs.shape[0]
    if workers <= 1 or not fork_available():
        start = time.perf_counter()
        index.count_points(lngs, lats, exact=exact)
        return ScalingPoint(1, time.perf_counter() - start, n)

    _bind_shared(index, lngs, lats, exact)
    step = (n + workers - 1) // workers
    slices = [(i, min(i + step, n)) for i in range(0, n, step)]
    ctx = multiprocessing.get_context("fork")
    try:
        with ctx.Pool(processes=workers) as pool:
            start = time.perf_counter()
            results = pool.map(_worker_count, slices)
            elapsed = time.perf_counter() - start
    finally:
        _SHARED.clear()
    total = np.sum(results, axis=0)
    assert total.shape[0] == index.num_polygons
    return ScalingPoint(workers, elapsed, n)


def parallel_counts_array(index: ACTIndex, lngs: np.ndarray,
                          lats: np.ndarray, workers: int,
                          exact: bool = False) -> np.ndarray:
    """Like :func:`parallel_count` but returns the summed counts."""
    lngs = np.asarray(lngs, dtype=np.float64)
    lats = np.asarray(lats, dtype=np.float64)
    n = lngs.shape[0]
    if workers <= 1 or not fork_available():
        return index.count_points(lngs, lats, exact=exact)
    _bind_shared(index, lngs, lats, exact)
    step = (n + workers - 1) // workers
    slices = [(i, min(i + step, n)) for i in range(0, n, step)]
    ctx = multiprocessing.get_context("fork")
    try:
        with ctx.Pool(processes=workers) as pool:
            results = pool.map(_worker_count, slices)
    finally:
        _SHARED.clear()
    return np.sum(results, axis=0)


def scaling_sweep(index: ACTIndex, lngs: np.ndarray, lats: np.ndarray,
                  worker_counts: Optional[Sequence[int]] = None,
                  exact: bool = False) -> List[ScalingPoint]:
    """Measure throughput across worker counts (Figure 4's x-axis)."""
    if worker_counts is None:
        cpus = multiprocessing.cpu_count()
        worker_counts = [w for w in (1, 2, 4, 8, 16, 32) if w <= 2 * cpus]
    return [parallel_count(index, lngs, lats, workers, exact=exact)
            for workers in worker_counts]
