"""Aggregation utilities: counting points per polygon across batches.

The paper's evaluation workload is "join 1 B points ... and count the
number of points per polygon". :class:`CountAggregator` accumulates those
counts over arbitrarily many batches with bounded memory, so workloads
far larger than RAM stream through cleanly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..act.index import ACTIndex
from ..errors import JoinError


class CountAggregator:
    """Accumulates per-polygon counts across point batches."""

    def __init__(self, num_polygons: int):
        if num_polygons < 1:
            raise JoinError(f"num_polygons must be >= 1, got {num_polygons}")
        self.counts = np.zeros(num_polygons, dtype=np.int64)
        self.num_points = 0
        self.num_batches = 0

    def update(self, batch_counts: np.ndarray, num_points: int) -> None:
        if batch_counts.shape != self.counts.shape:
            raise JoinError(
                f"batch shape {batch_counts.shape} does not match "
                f"aggregator shape {self.counts.shape}"
            )
        self.counts += batch_counts
        self.num_points += num_points
        self.num_batches += 1

    def merge(self, other: "CountAggregator") -> "CountAggregator":
        merged = CountAggregator(self.counts.shape[0])
        merged.counts = self.counts + other.counts
        merged.num_points = self.num_points + other.num_points
        merged.num_batches = self.num_batches + other.num_batches
        return merged

    def top_k(self, k: int = 10) -> Dict[int, int]:
        order = np.argsort(self.counts)[::-1][:k]
        return {int(pid): int(self.counts[pid]) for pid in order
                if self.counts[pid] > 0}

    def as_dict(self) -> Dict[int, int]:
        return {pid: int(count) for pid, count in enumerate(self.counts)
                if count > 0}


def count_points_per_polygon(index: ACTIndex, lngs: np.ndarray,
                             lats: np.ndarray, exact: bool = False,
                             batch_size: Optional[int] = None) -> np.ndarray:
    """Chunked count-per-polygon over a large point array.

    ``batch_size`` bounds peak memory of the vectorized lookup
    (defaults to 1M points per chunk).
    """
    lngs = np.asarray(lngs, dtype=np.float64)
    lats = np.asarray(lats, dtype=np.float64)
    size = batch_size or 1_000_000
    aggregator = CountAggregator(index.num_polygons)
    for start in range(0, lngs.shape[0], size):
        stop = start + size
        aggregator.update(
            index.count_points(lngs[start:stop], lats[start:stop],
                               exact=exact),
            int(lngs[start:stop].shape[0]),
        )
    return aggregator.counts


def count_stream(index: ACTIndex,
                 stream: Iterable[Tuple[np.ndarray, np.ndarray]],
                 exact: bool = False) -> CountAggregator:
    """Aggregate counts over a batch stream (see
    :func:`repro.datasets.points.point_stream`)."""
    aggregator = CountAggregator(index.num_polygons)
    for lngs, lats in stream:
        aggregator.update(
            index.count_points(lngs, lats, exact=exact),
            int(np.asarray(lngs).shape[0]),
        )
    return aggregator
