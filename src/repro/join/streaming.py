"""Streaming micro-batch join with latency tracking.

The paper's motivating scenario: points arrive as a stream (passenger
requests, vehicle positions) and must be mapped onto static polygons with
low latency. :class:`StreamingJoin` consumes micro-batches, maintains
running per-polygon counts, and records per-batch latencies so tail
behaviour (p95/p99) can be reported alongside throughput.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..act.index import ACTIndex
from .aggregate import CountAggregator


class StreamingJoin:
    """Stateful micro-batch join over an ACT index."""

    def __init__(self, index: ACTIndex, exact: bool = False):
        self.index = index
        self.exact = exact
        self.executor = index.executor
        self.aggregator = CountAggregator(index.num_polygons)
        self._latencies: List[float] = []

    def process_batch(self, lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Join one micro-batch; returns that batch's counts."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        start = time.perf_counter()
        counts = self.executor.count_points(lngs, lats, exact=self.exact)
        self._latencies.append(time.perf_counter() - start)
        self.aggregator.update(counts, int(lngs.shape[0]))
        return counts

    def run(self, stream: Iterable[Tuple[np.ndarray, np.ndarray]],
            ) -> CountAggregator:
        """Drain a stream of ``(lngs, lats)`` batches."""
        for lngs, lats in stream:
            self.process_batch(lngs, lats)
        return self.aggregator

    @property
    def counts(self) -> np.ndarray:
        return self.aggregator.counts

    @property
    def num_points(self) -> int:
        return self.aggregator.num_points

    def latency_stats(self) -> Dict[str, float]:
        """Per-batch latency percentiles in milliseconds."""
        if not self._latencies:
            return {"batches": 0}
        lat = np.asarray(self._latencies) * 1e3
        return {
            "batches": len(self._latencies),
            "mean_ms": float(lat.mean()),
            "p50_ms": float(np.percentile(lat, 50)),
            "p95_ms": float(np.percentile(lat, 95)),
            "p99_ms": float(np.percentile(lat, 99)),
            "max_ms": float(lat.max()),
        }
