"""Command-line interface: ``repro-act``.

Small operational front end over the library:

* ``repro-act info --dataset neighborhoods --precision 15`` — build an
  index over a synthetic dataset and print its Table-I-style metrics;
* ``repro-act query --dataset boroughs --lng -73.97 --lat 40.75`` —
  build (or reuse within the process) and run a point query;
* ``repro-act join --dataset census --points 100000`` — run the
  count-per-polygon workload and print throughput;
* ``repro-act demo`` — a 30-second end-to-end tour;
* ``repro-act serve --dataset neighborhoods --port 8080`` — run the
  long-lived HTTP query service (see :mod:`repro.serve`);
* ``repro-act serve --workers 4 --index-file idx.npz --mmap`` — the
  pre-fork serving fleet: N supervised worker processes on one
  listening address, node-pool pages shared through the page cache;
* ``repro-act admin reload nyc --path new.npz`` — drive a running
  server's (or fleet's) loopback admin API: list, register, reload, and
  retire indexes with zero downtime (see :mod:`repro.serve.lifecycle`);
* ``repro-act admin stats`` — scrape a running server's ``GET /metrics``
  (Prometheus text exposition) and print counters, gauges, and
  histogram quantile summaries (``--raw`` dumps the exposition).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import __version__
from .act.index import ACTIndex
from .datasets import nyc, points

#: Synthetic datasets the CLI can build indexes over.
DATASET_CHOICES = ("boroughs", "neighborhoods", "census")


def _dataset(name: str, size: Optional[int]):
    if name == "boroughs":
        return nyc.boroughs()
    if name == "neighborhoods":
        return nyc.neighborhoods(size or 289)
    if name == "census":
        return nyc.census_blocks(size or 1000)
    raise SystemExit(f"unknown dataset {name!r} "
                     f"(choose boroughs|neighborhoods|census)")


def _build(args) -> ACTIndex:
    polygons = _dataset(args.dataset, getattr(args, "size", None))
    start = time.perf_counter()
    index = ACTIndex.build(polygons, precision_meters=args.precision)
    elapsed = time.perf_counter() - start
    print(f"built {index} in {elapsed:.1f} s", file=sys.stderr)
    return index


def cmd_info(args) -> int:
    index = _build(args)
    stats = index.stats
    print(f"dataset                 : {args.dataset} "
          f"({stats.num_polygons} polygons)")
    print(f"precision bound         : {stats.precision_meters:g} m "
          f"(realized {index.guaranteed_precision_meters:.2f} m)")
    print(f"boundary level          : {stats.boundary_level}")
    print(f"indexed cells           : {stats.indexed_cells:,} "
          f"({stats.raw_cells:,} before denormalization)")
    print(f"ACT size                : {stats.trie_bytes / 1e6:.2f} MB "
          f"({stats.trie_nodes:,} nodes, fanout {stats.fanout})")
    print(f"lookup table            : {stats.lookup_table_bytes / 1e3:.1f} kB "
          f"({stats.lookup_table_sets} unique reference sets)")
    print(f"build individual covers : {stats.build_coverings_seconds:.2f} s")
    print(f"build super covering    : {stats.build_super_seconds:.2f} s")
    print(f"build trie              : {stats.build_trie_seconds:.2f} s")
    return 0


def cmd_query(args) -> int:
    index = _build(args)
    result = index.query(args.lng, args.lat)
    exact = index.query_exact(args.lng, args.lat)
    print(f"point ({args.lng}, {args.lat})")
    print(f"  true hits   : {list(result.true_hits)}")
    print(f"  candidates  : {list(result.candidates)}")
    print(f"  approximate : {list(result.all_ids)}")
    print(f"  exact       : {list(exact)}")
    return 0


def cmd_join(args) -> int:
    index = _build(args)
    lngs, lats = points.taxi_points(args.points, seed=args.seed)
    start = time.perf_counter()
    counts = index.count_points(lngs, lats, exact=args.exact)
    elapsed = time.perf_counter() - start
    mode = "exact" if args.exact else "approximate"
    print(f"{mode} join of {args.points:,} points: {elapsed:.3f} s "
          f"({args.points / elapsed / 1e6:.2f} M points/s)")
    top = sorted(range(len(counts)), key=lambda i: -counts[i])[:10]
    for pid in top:
        if counts[pid]:
            print(f"  polygon {pid:>6}: {int(counts[pid]):,} points")
    return 0


def _serve_registry(args):
    """The registry + index name shared by single-process and fleet serve."""
    from .serve import IndexRegistry

    registry = IndexRegistry()
    name = args.dataset
    if args.mmap and not args.index_file:
        raise SystemExit("--mmap requires --index-file (only a serialized "
                         "index can be memory-mapped)")
    if args.index_file:
        registry.register_path(
            name, args.index_file,
            mmap_mode="r" if args.mmap else None,
            verify=getattr(args, "verify", "header"))
    else:
        dataset, size, precision = args.dataset, args.size, args.precision

        def build() -> ACTIndex:
            polygons = _dataset(dataset, size)
            return ACTIndex.build(polygons, precision_meters=precision)

        registry.register(name, build)
    return registry, name


def _serve_fleet(args, serve_config) -> int:
    """Multiprocess front: ``repro-act serve --workers N``."""
    import signal

    from .serve import FleetConfig, ServingFleet, fleet_available

    if not fleet_available():
        raise SystemExit("--workers > 1 needs the 'fork' start method, "
                         "which this platform lacks; run --workers 1")
    if args.lazy:
        print("note: --lazy is ignored with --workers > 1 (the fleet "
              "always materializes before forking)", file=sys.stderr)
    registry, name = _serve_registry(args)
    fleet = ServingFleet(registry, FleetConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        binary_port=args.binary_port,
        serve=serve_config,
        shards=args.workers if args.shards else 0,
    ))
    start = time.perf_counter()
    fleet.start()
    host, port = fleet.address
    mode = "SO_REUSEPORT" if fleet.reuseport else "shared socket"
    sharded = f", {args.workers} shards" if args.shards else ""
    print(f"fleet of {args.workers} workers ({mode}{sharded}) serving "
          f"index {name!r} on http://{host}:{port} "
          f"(prewarmed in {time.perf_counter() - start:.1f} s)",
          file=sys.stderr)
    print(f"  try: curl 'http://{host}:{port}/stats' for fleet-wide "
          f"metrics", file=sys.stderr)
    if fleet.config.binary_port is not None:
        bhost, bport = fleet.binary_address
        print(f"  binary data plane on {bhost}:{bport} "
              f"(repro.serve.binproto.Client)", file=sys.stderr)
    if args.shards:
        addrs = ", ".join(f"{slot}={h}:{p}" for slot, (h, p)
                          in sorted(fleet.shard_addresses.items()))
        print(f"  shard binary sockets: {addrs}", file=sys.stderr)

    def on_term(signum, frame):
        fleet.shutdown()

    signal.signal(signal.SIGTERM, on_term)
    try:
        fleet.wait()
    except KeyboardInterrupt:
        pass
    finally:
        fleet.shutdown()
    return 0


def cmd_serve(args) -> int:
    from .serve import ACTService, ServeConfig, create_server

    serve_config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_capacity=args.cache_capacity,
        default_budget_ms=args.budget_ms,
        inline_miss_threshold=args.inline_miss_threshold,
        telemetry=args.telemetry,
        trace_sample_interval=args.trace_sample_interval,
        slow_query_ms=args.slow_query_ms,
    )
    if args.workers > 1 or args.shards:
        return _serve_fleet(args, serve_config)
    registry, name = _serve_registry(args)
    service = ACTService(registry=registry, config=serve_config)
    if not args.lazy:
        start = time.perf_counter()
        index = service.registry.get(name)
        print(f"materialized {index} in {time.perf_counter() - start:.1f} s",
              file=sys.stderr)
    server = create_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving index {name!r} on http://{host}:{port}", file=sys.stderr)
    print(f"  try: curl 'http://{host}:{port}/query?index={name}"
          f"&lng=-73.97&lat=40.75'", file=sys.stderr)
    frontend = None
    if args.binary_port is not None:
        from .serve.aserver import create_binary_frontend

        frontend = create_binary_frontend(service, host=args.host,
                                          port=args.binary_port)
        bhost, bport = frontend.address
        print(f"  binary data plane on {bhost}:{bport} "
              f"(repro.serve.binproto.Client)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        if frontend is not None:
            frontend.stop()
        service.close()
    return 0


def cmd_admin(args) -> int:
    """Drive the admin API of a running server: ``repro-act admin …``."""
    import json
    import urllib.error
    import urllib.request
    from urllib.parse import quote

    base = args.url.rstrip("/")
    command = args.admin_command
    if command == "stats":
        return _admin_stats(base, args)
    if command == "indexes":
        request = urllib.request.Request(f"{base}/admin/indexes")
    elif command == "unregister":
        request = urllib.request.Request(
            f"{base}/admin/index/{quote(args.name, safe='')}",
            method="DELETE")
    else:  # register / reload
        body = {"name": args.name}
        if args.path is not None:
            body["path"] = args.path
        if args.mmap:
            body["mmap_mode"] = "r"
        request = urllib.request.Request(
            f"{base}/admin/{command}",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST")
    try:
        with urllib.request.urlopen(request,
                                    timeout=args.timeout) as response:
            payload = json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read()).get("error", "")
        except Exception:
            detail = ""
        print(f"admin {command} failed: HTTP {exc.code} {detail}",
              file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(f"cannot reach {base}: {exc.reason}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    if payload.get("complete") is False:
        # a fleet reload that timed out waiting for some worker's ack:
        # surface it in the exit code so scripts notice
        return 1
    return 0


def _bucket_quantile(buckets, count: float, q: float) -> float:
    """Quantile estimate from cumulative ``(le, cumulative)`` buckets."""
    if count <= 0:
        return 0.0
    rank = q * count
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if bound == float("inf"):
                return prev_bound
            width_count = cumulative - prev_cum
            if width_count <= 0:
                return bound
            frac = (rank - prev_cum) / width_count
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_cum = bound, cumulative
    return prev_bound


def _admin_stats(base: str, args) -> int:
    """``repro-act admin stats``: scrape and summarize ``/metrics``."""
    import urllib.error
    import urllib.request

    from .obs import parse_exposition, validate_exposition

    url = f"{base}/metrics"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            text = response.read().decode("utf-8")
    except urllib.error.URLError as exc:
        print(f"cannot reach {url}: {exc}", file=sys.stderr)
        return 1
    if args.raw:
        print(text, end="")
        return 0
    problems = validate_exposition(text)
    for problem in problems:
        print(f"invalid exposition: {problem}", file=sys.stderr)
    families = parse_exposition(text)
    for family in sorted(families):
        fam = families[family]
        kind = fam["type"]
        if kind == "histogram":
            # regroup per label set, then summarize count/sum/quantiles
            series = {}
            for name, labels, value in fam["samples"]:
                key = tuple(sorted(
                    (k, v) for k, v in labels.items() if k != "le"))
                entry = series.setdefault(
                    key, {"buckets": [], "sum": 0.0, "count": 0.0})
                if name.endswith("_bucket"):
                    le = labels.get("le", "+Inf")
                    bound = float("inf") if le == "+Inf" else float(le)
                    entry["buckets"].append((bound, value))
                elif name.endswith("_sum"):
                    entry["sum"] = value
                elif name.endswith("_count"):
                    entry["count"] = value
            for key, entry in sorted(series.items()):
                labels = "".join(f" {k}={v}" for k, v in key)
                buckets = sorted(entry["buckets"])
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                p50 = _bucket_quantile(buckets, count, 0.50)
                p99 = _bucket_quantile(buckets, count, 0.99)
                print(f"{family}{labels}: count={count:.0f} "
                      f"mean={mean:.6g} p50~{p50:.6g} p99~{p99:.6g}")
        else:
            for name, labels, value in fam["samples"]:
                rendered = "".join(
                    f" {k}={v}" for k, v in sorted(labels.items()))
                print(f"{name}{rendered}: {value:g}")
    return 1 if problems else 0


def cmd_demo(args) -> int:
    args.dataset = "neighborhoods"
    args.size = 60
    args.precision = 30.0
    index = _build(args)
    lng, lat = index.polygons[7].centroid
    print(f"\nsample query at a polygon centroid ({lng:.4f}, {lat:.4f}):")
    print(f"  -> {index.query_exact(lng, lat)}")
    lngs, lats = points.taxi_points(100_000, seed=0)
    start = time.perf_counter()
    counts = index.count_points(lngs, lats)
    elapsed = time.perf_counter() - start
    print(f"\njoined 100,000 taxi-like points in {elapsed * 1e3:.0f} ms "
          f"({0.1 / elapsed:.1f} M points/s)")
    print(f"busiest neighborhood: #{int(counts.argmax())} "
          f"with {int(counts.max()):,} points")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-act",
        description="Approximate geospatial joins with precision "
                    "guarantees (ACT, ICDE 2018 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--dataset", default="neighborhoods",
                       choices=DATASET_CHOICES,
                       help="synthetic dataset to index")
        p.add_argument("--size", type=int, default=None,
                       help="polygon count override")
        p.add_argument("--precision", type=float, default=15.0,
                       help="precision bound in meters (default 15)")

    p_info = sub.add_parser("info", help="build an index, print metrics")
    common(p_info)
    p_info.set_defaults(func=cmd_info)

    p_query = sub.add_parser("query", help="point query")
    common(p_query)
    p_query.add_argument("--lng", type=float, required=True)
    p_query.add_argument("--lat", type=float, required=True)
    p_query.set_defaults(func=cmd_query)

    p_join = sub.add_parser("join", help="count points per polygon")
    common(p_join)
    p_join.add_argument("--points", type=int, default=100_000)
    p_join.add_argument("--seed", type=int, default=0)
    p_join.add_argument("--exact", action="store_true",
                        help="refine candidates (exact counts)")
    p_join.set_defaults(func=cmd_join)

    p_demo = sub.add_parser("demo", help="30-second tour")
    p_demo.set_defaults(func=cmd_demo)

    p_serve = sub.add_parser("serve", help="run the HTTP query service")
    common(p_serve)
    p_serve.add_argument("--index-file", default=None,
                         help="serve a serialized .npz index instead of "
                              "building from --dataset")
    p_serve.add_argument("--mmap", action="store_true",
                         help="memory-map the node pool from --index-file "
                              "(lazy cold start, page-cache sharing)")
    p_serve.add_argument("--verify", default="header",
                         choices=("off", "header", "full"),
                         help="artifact integrity checking on every load "
                              "of --index-file: header = manifest + "
                              "metadata checksums (default, mmap-cheap); "
                              "full = checksum every byte including the "
                              "node pool; off = trust the file")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--binary-port", type=int, default=None,
                         help="also serve the zero-copy binary batch "
                              "protocol on this port (0 picks a free "
                              "one; see repro.serve.binproto)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="serving processes; >1 runs the pre-fork "
                              "fleet (shared listening address, "
                              "supervised restart, aggregated /stats)")
    p_serve.add_argument("--shards", action="store_true",
                         help="shard the fleet: one keyspace slice per "
                              "worker, cross-shard requests forwarded "
                              "over the binary protocol (implies a "
                              "binary data plane; see docs/"
                              "ARCHITECTURE.md)")
    p_serve.add_argument("--max-batch", type=int, default=512,
                         help="micro-batch size cap (default 512)")
    p_serve.add_argument("--max-wait-ms", type=float, default=0.0,
                         help="extra wait for fuller batches in ms "
                              "(default 0 = adaptive greedy batching)")
    p_serve.add_argument("--inline-miss-threshold", type=int, default=2,
                         help="cache misses at or below this many in "
                              "flight answer inline; above it they are "
                              "micro-batched (default 2)")
    p_serve.add_argument("--cache-capacity", type=int, default=65536,
                         help="cell result cache entries (0 disables)")
    p_serve.add_argument("--budget-ms", type=float, default=None,
                         help="default per-request latency budget")
    p_serve.add_argument("--lazy", action="store_true",
                         help="build/load the index on first query "
                              "instead of at startup")
    p_serve.add_argument("--telemetry", default="full",
                         choices=("full", "counters", "off"),
                         help="full = counters + sampled tracing + slow-"
                              "query log (default); counters = bare "
                              "aggregates; off = no-op metrics")
    p_serve.add_argument("--trace-sample-interval", type=int, default=64,
                         help="trace every Nth request (0 disables "
                              "sampling; ?trace=1 still works)")
    p_serve.add_argument("--slow-query-ms", type=float, default=250.0,
                         help="requests slower than this land in the "
                              "slow-query log (GET /admin/slowlog)")
    p_serve.set_defaults(func=cmd_serve)

    p_admin = sub.add_parser(
        "admin", help="administer a running server or fleet (loopback)")
    p_admin.add_argument("--url", default="http://127.0.0.1:8080",
                         help="base URL of the running server")
    p_admin.add_argument("--timeout", type=float, default=60.0,
                         help="HTTP timeout in seconds (fleet reloads "
                              "wait for every worker to ack)")
    admin_sub = p_admin.add_subparsers(dest="admin_command", required=True)
    admin_sub.add_parser("indexes",
                         help="list indexes: name, generation, source, "
                              "bytes, mmap mode")
    p_stats = admin_sub.add_parser(
        "stats", help="scrape GET /metrics and summarize (counters, "
                      "gauges, histogram quantiles)")
    p_stats.add_argument("--raw", action="store_true",
                         help="dump the raw Prometheus exposition text")
    p_reg = admin_sub.add_parser(
        "register", help="register + materialize a serialized index")
    p_reg.add_argument("name")
    p_reg.add_argument("--path", required=True,
                       help="serialized .npz index to serve")
    p_reg.add_argument("--mmap", action="store_true",
                       help="memory-map the node pool")
    p_rel = admin_sub.add_parser(
        "reload", help="swap in a fresh generation with zero downtime "
                       "(fleet-wide when workers > 1)")
    p_rel.add_argument("name")
    p_rel.add_argument("--path", default=None,
                       help="repoint the index at a new .npz (default: "
                            "re-materialize from its current source)")
    p_rel.add_argument("--mmap", action="store_true",
                       help="memory-map the node pool")
    p_unreg = admin_sub.add_parser(
        "unregister", help="retire an index from serving")
    p_unreg.add_argument("name")
    p_admin.set_defaults(func=cmd_admin)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
